// Runtime semantics of the annotated lock wrappers (common/annotations.h).
// The Clang CI lane proves the COMPILE-time story (see
// tests/test_annotations_negative/); this suite proves the wrappers still
// behave exactly like the std primitives they wrap — mutual exclusion,
// try-lock, reader/writer sharing, condition-variable wakeups, and the
// relockable MutexLock protocol — and runs tier-1 on every compiler.
//
// Guarded state lives in little structs: PB_GUARDED_BY applies to data
// members (on locals Clang ignores the attribute, with a warning the
// -Werror lanes would promote).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace pb {
namespace {

struct GuardedCounter {
  Mutex mu;
  int value PB_GUARDED_BY(mu) = 0;
};

TEST(MutexTest, ExclusionUnderContention) {
  GuardedCounter c;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&c.mu);
        ++c.value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&c.mu);
  EXPECT_EQ(c.value, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  std::atomic<int> observed{-1};
  // TryLock from ANOTHER thread: self-try-lock on a held std::mutex is UB.
  std::thread probe([&] {
    if (mu.TryLock()) {
      observed = 1;
      mu.Unlock();
    } else {
      observed = 0;
    }
  });
  probe.join();
  EXPECT_EQ(observed.load(), 0);
  mu.Unlock();
  std::thread probe2([&] {
    if (mu.TryLock()) {
      observed = 1;
      mu.Unlock();
    } else {
      observed = 0;
    }
  });
  probe2.join();
  EXPECT_EQ(observed.load(), 1);
}

TEST(MutexLockTest, RelockProtocolRoundTrips) {
  GuardedCounter c;
  {
    MutexLock lock(&c.mu);
    c.value = 1;
    lock.Unlock();
    // The mutex is genuinely free here: another thread can take it.
    std::atomic<bool> acquired{false};
    std::thread t([&] {
      MutexLock inner(&c.mu);
      acquired = true;
    });
    t.join();
    EXPECT_TRUE(acquired.load());
    lock.Lock();
    c.value = 2;
    // Destructor releases the re-held lock.
  }
  MutexLock lock(&c.mu);
  EXPECT_EQ(c.value, 2);
}

TEST(SharedMutexTest, ReadersShareWriterExcludes) {
  SharedMutex mu;
  // Two readers can hold the lock at once: both must reach the rendezvous
  // while holding shared, which deadlocks if shared access is exclusive.
  std::atomic<int> readers_in{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      ReaderMutexLock lock(&mu);
      readers_in.fetch_add(1);
      while (readers_in.load() < 2) std::this_thread::yield();
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(readers_in.load(), 2);

  // A writer excludes readers: with the writer lock held, TryLockShared
  // from another thread must fail.
  mu.Lock();
  std::atomic<int> shared_got{-1};
  std::thread probe([&] {
    if (mu.TryLockShared()) {
      shared_got = 1;
      mu.UnlockShared();
    } else {
      shared_got = 0;
    }
  });
  probe.join();
  EXPECT_EQ(shared_got.load(), 0);
  mu.Unlock();

  // And a reader excludes writers.
  mu.LockShared();
  std::atomic<int> writer_got{-1};
  std::thread probe2([&] {
    if (mu.TryLock()) {
      writer_got = 1;
      mu.Unlock();
    } else {
      writer_got = 0;
    }
  });
  probe2.join();
  EXPECT_EQ(writer_got.load(), 0);
  mu.UnlockShared();
}

struct Gate {
  Mutex mu;
  CondVar cv;
  bool ready PB_GUARDED_BY(mu) = false;
};

TEST(CondVarTest, WaitWakesOnNotify) {
  Gate gate;
  std::atomic<bool> seen{false};
  std::thread waiter([&] {
    MutexLock lock(&gate.mu);
    while (!gate.ready) gate.cv.Wait(&gate.mu);
    seen = true;
  });
  {
    MutexLock lock(&gate.mu);
    gate.ready = true;
  }
  gate.cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(seen.load());
}

TEST(CondVarTest, PredicateOverloadHandlesSpuriousWakeups) {
  Mutex mu;
  CondVar cv;
  std::atomic<int> stage{0};  // unguarded: the lambda-predicate use case
  std::thread waiter([&] {
    MutexLock lock(&mu);
    cv.Wait(&mu, [&] { return stage.load() == 2; });
    stage = 3;
  });
  // Notify once at stage 1: the predicate is still false, so the waiter
  // must absorb the wakeup and keep waiting.
  stage = 1;
  cv.NotifyAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_NE(stage.load(), 3);
  stage = 2;
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(stage.load(), 3);
}

TEST(CondVarTest, WaitForTimesOutAndReholdsMutex) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  const bool woke = cv.WaitFor(&mu, std::chrono::milliseconds(5));
  EXPECT_FALSE(woke);  // nobody notified
  // The mutex must be re-held after the timeout: a second thread's TryLock
  // fails.
  std::atomic<int> got{-1};
  std::thread probe([&] {
    if (mu.TryLock()) {
      got = 1;
      mu.Unlock();
    } else {
      got = 0;
    }
  });
  probe.join();
  EXPECT_EQ(got.load(), 0);
}

TEST(WriterMutexLockTest, ScopedWriterExcludesAndReleases) {
  SharedMutex mu;
  {
    WriterMutexLock lock(&mu);
    std::atomic<int> got{-1};
    std::thread probe([&] {
      if (mu.TryLockShared()) {
        got = 1;
        mu.UnlockShared();
      } else {
        got = 0;
      }
    });
    probe.join();
    EXPECT_EQ(got.load(), 0);
  }
  // Released on scope exit.
  std::atomic<int> got{-1};
  std::thread probe([&] {
    if (mu.TryLock()) {
      got = 1;
      mu.Unlock();
    } else {
      got = 0;
    }
  });
  probe.join();
  EXPECT_EQ(got.load(), 1);
}

}  // namespace
}  // namespace pb
