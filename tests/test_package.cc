// Unit tests for the Package value type and its aggregate/validity
// semantics (the engine's ground truth for what a "valid package" is).

#include <gtest/gtest.h>

#include "core/package.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

namespace pb::core {
namespace {

db::Table MakeMeals() {
  db::Table t("meals", db::Schema({{"id", db::ValueType::kInt},
                                   {"calories", db::ValueType::kDouble},
                                   {"protein", db::ValueType::kDouble},
                                   {"gluten", db::ValueType::kString}}));
  auto add = [&](int64_t id, double cal, double prot, const char* g) {
    ASSERT_TRUE(t.Append({db::Value::Int(id), db::Value::Double(cal),
                          db::Value::Double(prot), db::Value::String(g)})
                    .ok());
  };
  add(0, 700, 30, "full");
  add(1, 250, 12, "free");
  add(2, 900, 55, "free");
  add(3, 300, 20, "free");
  add(4, 550, 25, "full");
  return t;
}

paql::AnalyzedQuery Analyzed(const db::Catalog& catalog,
                             const std::string& text) {
  auto aq = paql::ParseAndAnalyze(text, catalog);
  EXPECT_TRUE(aq.ok()) << aq.status().ToString();
  return std::move(aq).value();
}

class PackageTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_.RegisterOrReplace(MakeMeals()); }
  db::Catalog catalog_;
};

// ----- Multiset mechanics ----------------------------------------------------

TEST(PackageMechanicsTest, AddRemoveNormalize) {
  Package p;
  p.Add(5);
  p.Add(2);
  p.Add(5, 2);
  EXPECT_EQ(p.TotalCount(), 4);
  EXPECT_EQ(p.MultiplicityOf(5), 3);
  EXPECT_EQ(p.MultiplicityOf(2), 1);
  EXPECT_EQ(p.MultiplicityOf(99), 0);
  // rows stay sorted
  ASSERT_EQ(p.rows.size(), 2u);
  EXPECT_EQ(p.rows[0], 2u);
  EXPECT_EQ(p.rows[1], 5u);

  EXPECT_EQ(p.Remove(5, 2), 2);
  EXPECT_EQ(p.MultiplicityOf(5), 1);
  EXPECT_EQ(p.Remove(5, 10), 1);  // clamps
  EXPECT_EQ(p.MultiplicityOf(5), 0);
  EXPECT_EQ(p.Remove(5), 0);      // absent
  EXPECT_EQ(p.TotalCount(), 1);
}

TEST(PackageMechanicsTest, NormalizeMergesAndSorts) {
  Package p;
  p.rows = {7, 3, 7};
  p.multiplicity = {1, 2, 3};
  p.Normalize();
  ASSERT_EQ(p.rows.size(), 2u);
  EXPECT_EQ(p.rows[0], 3u);
  EXPECT_EQ(p.multiplicity[0], 2);
  EXPECT_EQ(p.rows[1], 7u);
  EXPECT_EQ(p.multiplicity[1], 4);
}

TEST(PackageMechanicsTest, FingerprintStable) {
  Package a, b;
  a.Add(1);
  a.Add(3, 2);
  b.Add(3, 2);
  b.Add(1);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.Add(1);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

// ----- Aggregates ------------------------------------------------------------

TEST_F(PackageTest, AggregatesOverPackage) {
  db::Table t = MakeMeals();
  Package p;
  p.Add(1);      // 250 cal
  p.Add(3, 2);   // 300 cal x2
  paql::AggCall sum{db::AggFunc::kSum, db::Col("calories")};
  ASSERT_TRUE(sum.arg->Bind(t.schema()).ok());
  EXPECT_DOUBLE_EQ(*EvalPackageAgg(sum, t, p)->ToDouble(), 850.0);
  paql::AggCall cnt{db::AggFunc::kCount, nullptr};
  EXPECT_EQ(EvalPackageAgg(cnt, t, p)->AsInt(), 3);
  paql::AggCall avg{db::AggFunc::kAvg, db::Col("calories")};
  ASSERT_TRUE(avg.arg->Bind(t.schema()).ok());
  EXPECT_NEAR(EvalPackageAgg(avg, t, p)->AsDoubleExact(), 850.0 / 3, 1e-9);
  paql::AggCall mx{db::AggFunc::kMax, db::Col("calories")};
  ASSERT_TRUE(mx.arg->Bind(t.schema()).ok());
  EXPECT_DOUBLE_EQ(*EvalPackageAgg(mx, t, p)->ToDouble(), 300.0);
}

TEST_F(PackageTest, EmptyPackageSemantics) {
  db::Table t = MakeMeals();
  Package empty;
  paql::AggCall sum{db::AggFunc::kSum, db::Col("calories")};
  ASSERT_TRUE(sum.arg->Bind(t.schema()).ok());
  // SUM over the empty package is 0 (package semantics, not SQL NULL).
  auto v = EvalPackageAgg(sum, t, empty);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->is_null());
  EXPECT_DOUBLE_EQ(*v->ToDouble(), 0.0);
  // AVG/MIN/MAX stay NULL.
  paql::AggCall avg{db::AggFunc::kAvg, db::Col("calories")};
  ASSERT_TRUE(avg.arg->Bind(t.schema()).ok());
  EXPECT_TRUE(EvalPackageAgg(avg, t, empty)->is_null());
  paql::AggCall mn{db::AggFunc::kMin, db::Col("calories")};
  ASSERT_TRUE(mn.arg->Bind(t.schema()).ok());
  EXPECT_TRUE(EvalPackageAgg(mn, t, empty)->is_null());
  paql::AggCall cnt{db::AggFunc::kCount, nullptr};
  EXPECT_EQ(EvalPackageAgg(cnt, t, empty)->AsInt(), 0);
}

// ----- Validity --------------------------------------------------------------

TEST_F(PackageTest, GlobalConstraintSatisfaction) {
  auto aq = Analyzed(catalog_,
                     "SELECT PACKAGE(M) FROM meals M "
                     "SUCH THAT COUNT(*) = 2 AND SUM(calories) <= 600");
  Package good;
  good.Add(1);  // 250
  good.Add(3);  // 300
  EXPECT_TRUE(*SatisfiesGlobalConstraints(aq, good));
  Package too_many;
  too_many.Add(1);
  too_many.Add(3);
  too_many.Add(4);
  EXPECT_FALSE(*SatisfiesGlobalConstraints(aq, too_many));
  Package too_heavy;
  too_heavy.Add(0);  // 700
  too_heavy.Add(1);
  EXPECT_FALSE(*SatisfiesGlobalConstraints(aq, too_heavy));
}

TEST_F(PackageTest, EmptyPackageFailsAvgMinMaxConstraints) {
  auto aq = Analyzed(catalog_,
                     "SELECT PACKAGE(M) FROM meals M "
                     "SUCH THAT AVG(calories) <= 10000");
  Package empty;
  // AVG over empty is NULL; NULL <= 10000 is NULL -> unsatisfied.
  EXPECT_FALSE(*SatisfiesGlobalConstraints(aq, empty));
}

TEST_F(PackageTest, EmptyPackageSatisfiesPureSumUpperBounds) {
  auto aq = Analyzed(catalog_,
                     "SELECT PACKAGE(M) FROM meals M "
                     "SUCH THAT SUM(calories) <= 600");
  Package empty;
  EXPECT_TRUE(*SatisfiesGlobalConstraints(aq, empty));
}

TEST_F(PackageTest, BaseConstraintsCheckedPerMember) {
  auto aq = Analyzed(catalog_,
                     "SELECT PACKAGE(M) FROM meals M WHERE gluten = 'free'");
  Package ok;
  ok.Add(1);
  ok.Add(2);
  EXPECT_TRUE(*SatisfiesBaseConstraints(aq, ok));
  Package bad;
  bad.Add(0);  // gluten = full
  EXPECT_FALSE(*SatisfiesBaseConstraints(aq, bad));
}

TEST_F(PackageTest, IsValidChecksMultiplicityCap) {
  auto aq = Analyzed(catalog_, "SELECT PACKAGE(M) FROM meals M");
  Package doubled;
  doubled.Add(1, 2);  // REPEAT absent: cap is 1
  EXPECT_FALSE(*IsValidPackage(aq, doubled));
  auto aq2 = Analyzed(catalog_, "SELECT PACKAGE(M) FROM meals M REPEAT 2");
  EXPECT_TRUE(*IsValidPackage(aq2, doubled));
  Package tripled;
  tripled.Add(1, 3);
  EXPECT_FALSE(*IsValidPackage(aq2, tripled));
}

TEST_F(PackageTest, IsValidRejectsOutOfRangeRow) {
  auto aq = Analyzed(catalog_, "SELECT PACKAGE(M) FROM meals M");
  Package p;
  p.Add(999);
  EXPECT_FALSE(IsValidPackage(aq, p).ok());
}

TEST_F(PackageTest, ObjectiveValue) {
  auto aq = Analyzed(catalog_,
                     "SELECT PACKAGE(M) FROM meals M "
                     "SUCH THAT COUNT(*) = 2 MAXIMIZE SUM(protein)");
  Package p;
  p.Add(2);  // 55
  p.Add(4);  // 25
  EXPECT_DOUBLE_EQ(*PackageObjective(aq, p), 80.0);
  auto no_obj = Analyzed(catalog_, "SELECT PACKAGE(M) FROM meals M");
  EXPECT_DOUBLE_EQ(*PackageObjective(no_obj, p), 0.0);
}

TEST_F(PackageTest, DisjunctiveConstraintEvaluation) {
  // OR queries are not ILP-translatable but must evaluate exactly.
  auto aq = Analyzed(catalog_,
                     "SELECT PACKAGE(M) FROM meals M "
                     "SUCH THAT COUNT(*) = 1 OR SUM(calories) >= 1500");
  EXPECT_FALSE(aq.ilp_translatable);
  Package single;
  single.Add(1);
  EXPECT_TRUE(*SatisfiesGlobalConstraints(aq, single));
  Package heavy;
  heavy.Add(0);
  heavy.Add(2);  // 1600 cal, count 2
  EXPECT_TRUE(*SatisfiesGlobalConstraints(aq, heavy));
  Package neither;
  neither.Add(1);
  neither.Add(3);  // count 2, 550 cal
  EXPECT_FALSE(*SatisfiesGlobalConstraints(aq, neither));
}

TEST_F(PackageTest, MaterializeRepeatsTuples) {
  db::Table t = MakeMeals();
  Package p;
  p.Add(1);
  p.Add(3, 2);
  db::Table m = MaterializePackage(t, p);
  EXPECT_EQ(m.num_rows(), 3u);
  EXPECT_EQ(m.at(1, 0).AsInt(), 3);
  EXPECT_EQ(m.at(2, 0).AsInt(), 3);
}

}  // namespace
}  // namespace pb::core
