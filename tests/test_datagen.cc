// Tests for the workload generators: determinism, schema shape, and the
// distributional/derived-column invariants the benches rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/distributions.h"
#include "datagen/lineitem.h"
#include "datagen/recipes.h"
#include "datagen/stocks.h"
#include "datagen/travel.h"

namespace pb::datagen {
namespace {

// ----- Distributions ---------------------------------------------------------

TEST(DistributionsTest, ZipfRanksInRangeAndSkewed) {
  Rng rng(3);
  ZipfDistribution zipf(100, 1.2);
  int low_rank = 0;
  for (int i = 0; i < 2000; ++i) {
    size_t r = zipf.Sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
    if (r <= 10) ++low_rank;
  }
  // Zipf(1.2): the top decile dominates.
  EXPECT_GT(low_rank, 1000);
}

TEST(DistributionsTest, ClampedDrawsRespectBounds) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    double n = ClampedNormal(rng, 0, 100, -5, 5);
    EXPECT_GE(n, -5);
    EXPECT_LE(n, 5);
    double ln = ClampedLogNormal(rng, 0, 2, 0.5, 3);
    EXPECT_GE(ln, 0.5);
    EXPECT_LE(ln, 3);
  }
}

TEST(DistributionsTest, WeightedChoiceFollowsWeights) {
  Rng rng(9);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(WeightedChoice(rng, w), 1u);
  }
}

TEST(DistributionsTest, RoundTo) {
  EXPECT_DOUBLE_EQ(RoundTo(3.14159, 2), 3.14);
  EXPECT_DOUBLE_EQ(RoundTo(2.5, 0), 3.0);
  EXPECT_DOUBLE_EQ(RoundTo(-1.005, 1), -1.0);
}

// ----- Generators ------------------------------------------------------------

TEST(RecipesTest, DeterministicAndWellFormed) {
  db::Table a = GenerateRecipes(200, 42);
  db::Table b = GenerateRecipes(200, 42);
  ASSERT_EQ(a.num_rows(), 200u);
  ASSERT_EQ(b.num_rows(), 200u);
  for (size_t r = 0; r < 200; r += 37) {
    for (size_t c = 0; c < a.schema().num_columns(); ++c) {
      EXPECT_EQ(a.at(r, c).Compare(b.at(r, c)), 0);
    }
  }
  db::Table c = GenerateRecipes(200, 43);
  bool any_diff = false;
  for (size_t r = 0; r < 200 && !any_diff; ++r) {
    if (a.at(r, 4).Compare(c.at(r, 4)) != 0) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical calories";
}

TEST(RecipesTest, MarginalsInPlausibleRanges) {
  db::Table t = GenerateRecipes(1000, 7);
  auto cal_idx = t.schema().IndexOf("calories");
  ASSERT_TRUE(cal_idx.ok());
  const db::ColumnStats& cal = t.stats(*cal_idx);
  EXPECT_GE(*cal.min, 90.0);
  EXPECT_LE(*cal.max, 1600.0);
  EXPECT_GT(cal.mean(), 300.0);
  EXPECT_LT(cal.mean(), 900.0);
  // Macros consistent-ish with calories: protein grams stay bounded.
  auto prot_idx = t.schema().IndexOf("protein");
  EXPECT_LT(*t.stats(*prot_idx).max, 1600.0 * 0.40 / 4.0 + 1);
}

TEST(RecipesTest, GlutenFractionKnob) {
  RecipeOptions opts;
  opts.gluten_free_fraction = 0.9;
  db::Table t = GenerateRecipes(2000, 3, opts);
  auto g_idx = t.schema().IndexOf("gluten");
  ASSERT_TRUE(g_idx.ok());
  int free_count = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.at(r, *g_idx).AsString() == "free") ++free_count;
  }
  EXPECT_GT(free_count, 1650);
  EXPECT_LT(free_count, 1950);
}

TEST(TravelTest, IndicatorColumnsConsistent) {
  db::Table t = GenerateTravelItems(500, 5);
  auto kind = *t.schema().IndexOf("kind");
  auto is_f = *t.schema().IndexOf("is_flight");
  auto is_h = *t.schema().IndexOf("is_hotel");
  auto is_c = *t.schema().IndexOf("is_car");
  auto beach = *t.schema().IndexOf("beach_km");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    int64_t f = t.at(r, is_f).AsInt();
    int64_t h = t.at(r, is_h).AsInt();
    int64_t c = t.at(r, is_c).AsInt();
    EXPECT_EQ(f + h + c, 1) << "exactly one kind per item";
    const std::string k = t.at(r, kind).AsString();
    EXPECT_EQ(f == 1, k == "flight");
    EXPECT_EQ(h == 1, k == "hotel");
    if (h == 0) {
      EXPECT_DOUBLE_EQ(*t.at(r, beach).ToDouble(), 0.0);
    }
  }
}

TEST(TravelTest, MixRoughlyFollowsFractions) {
  db::Table t = GenerateTravelItems(3000, 11);
  auto is_f = *t.schema().IndexOf("is_flight");
  EXPECT_NEAR(t.stats(is_f).sum / 3000.0, 0.45, 0.05);
}

TEST(StocksTest, DerivedColumnsConsistent) {
  db::Table t = GenerateStocks(400, 13);
  auto price = *t.schema().IndexOf("price");
  auto tech_value = *t.schema().IndexOf("tech_value");
  auto is_tech = *t.schema().IndexOf("is_tech");
  auto is_short = *t.schema().IndexOf("is_short");
  auto is_long = *t.schema().IndexOf("is_long");
  auto sector = *t.schema().IndexOf("sector");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    bool tech = t.at(r, is_tech).AsInt() == 1;
    EXPECT_EQ(tech, t.at(r, sector).AsString() == "tech");
    double tv = *t.at(r, tech_value).ToDouble();
    if (tech) {
      EXPECT_DOUBLE_EQ(tv, *t.at(r, price).ToDouble());
    } else {
      EXPECT_DOUBLE_EQ(tv, 0.0);
    }
    EXPECT_EQ(t.at(r, is_short).AsInt() + t.at(r, is_long).AsInt(), 1);
  }
}

TEST(LineitemTest, RevenueDerivation) {
  db::Table t = GenerateLineitems(300, 17);
  auto price = *t.schema().IndexOf("extendedprice");
  auto disc = *t.schema().IndexOf("discount");
  auto rev = *t.schema().IndexOf("revenue");
  for (size_t r = 0; r < t.num_rows(); r += 13) {
    double expect = *t.at(r, price).ToDouble() *
                    (1.0 - *t.at(r, disc).ToDouble());
    EXPECT_NEAR(*t.at(r, rev).ToDouble(), expect, 0.01);
  }
  auto d = t.stats(disc);
  EXPECT_GE(*d.min, 0.0);
  EXPECT_LE(*d.max, 0.10 + 1e-9);
}

TEST(LineitemTest, SizesScale) {
  EXPECT_EQ(GenerateLineitems(10, 1).num_rows(), 10u);
  EXPECT_EQ(GenerateLineitems(5000, 1).num_rows(), 5000u);
}

}  // namespace
}  // namespace pb::datagen
