// Tests for the search strategies (brute force, local search, enumerator)
// and the QueryEvaluator facade, including the §4.2 join-based replacement
// finder.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/enumerator.h"
#include "core/evaluator.h"
#include "core/local_search.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

namespace pb::core {
namespace {

class StrategiesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.RegisterOrReplace(datagen::GenerateRecipes(60, /*seed=*/21));
  }

  paql::AnalyzedQuery Analyzed(const std::string& text) {
    auto aq = paql::ParseAndAnalyze(text, catalog_);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    return std::move(aq).value();
  }

  db::Catalog catalog_;
};

// ----- Brute force -----------------------------------------------------------

TEST_F(StrategiesTest, BruteForceFindsFirstValidFeasibilityQuery) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 2 AND SUM(calories) <= 800");
  BruteForceResult r = *BruteForceSearch(aq);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(*IsValidPackage(aq, r.best));
}

TEST_F(StrategiesTest, BruteForceInfeasibleWhenImpossible) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 2 AND SUM(calories) >= 1000000");
  BruteForceResult r = *BruteForceSearch(aq);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.exhausted || r.bounds.infeasible);
}

TEST_F(StrategiesTest, BruteForcePruningReducesNodes) {
  db::Catalog small;
  small.RegisterOrReplace(datagen::GenerateRecipes(16, 5));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 900 AND 1500 "
      "MAXIMIZE SUM(protein)",
      small);
  ASSERT_TRUE(aq.ok());
  BruteForceOptions with;
  BruteForceOptions without;
  without.use_cardinality_pruning = false;
  without.use_linear_bounding = false;
  auto r_with = BruteForceSearch(*aq, with);
  auto r_without = BruteForceSearch(*aq, without);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  ASSERT_TRUE(r_with->found);
  ASSERT_TRUE(r_without->found);
  // Same optimum, fewer nodes.
  EXPECT_NEAR(r_with->best_objective, r_without->best_objective, 1e-9);
  EXPECT_LT(r_with->nodes, r_without->nodes);
}

TEST_F(StrategiesTest, BruteForceHandlesRepeat) {
  db::Catalog small;
  small.RegisterOrReplace(datagen::GenerateRecipes(8, 9));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R REPEAT 2 "
      "SUCH THAT COUNT(*) = 4 MAXIMIZE SUM(protein)",
      small);
  ASSERT_TRUE(aq.ok());
  auto r = BruteForceSearch(*aq);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_EQ(r->best.TotalCount(), 4);
  for (int64_t m : r->best.multiplicity) EXPECT_LE(m, 2);
  EXPECT_TRUE(*IsValidPackage(*aq, r->best));
}

TEST_F(StrategiesTest, BruteForceRespectsNodeBudget) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT SUM(cost) <= 10000 MAXIMIZE SUM(rating)");
  BruteForceOptions opts;
  opts.max_nodes = 2000;
  auto r = BruteForceSearch(aq, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->exhausted);
  EXPECT_LE(r->nodes, opts.max_nodes + 2048);  // checked every 1024 nodes
}

TEST_F(StrategiesTest, BruteForceExactOnDisjunctiveQuery) {
  db::Catalog small;
  small.RegisterOrReplace(datagen::GenerateRecipes(12, 13));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 2 OR COUNT(*) = 5 MAXIMIZE SUM(protein)",
      small);
  ASSERT_TRUE(aq.ok());
  EXPECT_FALSE(aq->ilp_translatable);
  auto r = BruteForceSearch(*aq);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  // The optimum takes the 5 highest-protein recipes.
  EXPECT_EQ(r->best.TotalCount(), 5);
  EXPECT_TRUE(*IsValidPackage(*aq, r->best));
}

// ----- Local search ----------------------------------------------------------

TEST_F(StrategiesTest, LocalSearchReachesFeasibility) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 4 AND SUM(calories) BETWEEN 1500 AND 2500");
  LocalSearchOptions opts;
  opts.seed = 1;
  auto r = LocalSearch(aq, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_TRUE(*IsValidPackage(aq, r->package));
}

TEST_F(StrategiesTest, LocalSearchObjectivePhaseImproves) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 3 MAXIMIZE SUM(protein)");
  LocalSearchOptions no_phase;
  no_phase.seed = 2;
  no_phase.objective_phase = false;
  no_phase.max_restarts = 1;
  LocalSearchOptions with_phase = no_phase;
  with_phase.objective_phase = true;
  auto r0 = LocalSearch(aq, no_phase);
  auto r1 = LocalSearch(aq, with_phase);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r0->found);
  ASSERT_TRUE(r1->found);
  EXPECT_GE(r1->objective, r0->objective - 1e-9);
}

TEST_F(StrategiesTest, LocalSearchHonorsInfeasiblePruning) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) <= 2 AND SUM(calories) >= 100000");
  auto r = LocalSearch(aq);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
}

TEST_F(StrategiesTest, LocalSearchDeterministicPerSeed) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 3 AND SUM(calories) <= 2000 "
      "MAXIMIZE SUM(protein)");
  LocalSearchOptions opts;
  opts.seed = 77;
  auto a = LocalSearch(aq, opts);
  auto b = LocalSearch(aq, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->found, b->found);
  if (a->found) {
    EXPECT_EQ(a->package.Fingerprint(), b->package.Fingerprint());
  }
}

TEST_F(StrategiesTest, JoinReplacementFinderMatchesPaperSemantics) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT SUM(calories) <= 2500");
  // Build P0 as the first 4 recipes (may violate the constraint).
  Package p0;
  for (size_t i = 0; i < 4; ++i) p0.Add(i);
  auto joined = FindSingleTupleReplacementsViaJoin(aq, p0);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // Every returned (pid, rid) pair must actually lead to a valid package.
  for (size_t r = 0; r < joined->num_rows(); ++r) {
    size_t pid = static_cast<size_t>(joined->at(r, 0).AsInt());
    // rid column position: 1 + #rows of weights... locate by name.
    auto rid_idx = joined->schema().IndexOf("rid");
    ASSERT_TRUE(rid_idx.ok());
    size_t rid = static_cast<size_t>(joined->at(r, *rid_idx).AsInt());
    Package trial = p0;
    trial.Remove(pid);
    trial.Add(rid);
    EXPECT_TRUE(*SatisfiesGlobalConstraints(aq, trial))
        << "swap " << pid << " -> " << rid;
  }
}

TEST_F(StrategiesTest, KReplacementProbeCountsGrowWithK) {
  db::Catalog small;
  small.RegisterOrReplace(datagen::GenerateRecipes(25, 3));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT SUM(calories) <= 2500",
      small);
  ASSERT_TRUE(aq.ok());
  Package p0;
  for (size_t i = 0; i < 5; ++i) p0.Add(i);
  auto k1 = CountKReplacements(*aq, p0, 1, 1'000'000);
  auto k2 = CountKReplacements(*aq, p0, 2, 1'000'000);
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  // The 2k-way join explodes combinatorially (the paper's point).
  EXPECT_GT(k2->combinations_examined, 10 * k1->combinations_examined);
  EXPECT_FALSE(CountKReplacements(*aq, p0, 9, 10).ok());
}

// ----- Enumerator ------------------------------------------------------------

TEST_F(StrategiesTest, SolverEnumerationDistinctAndOrdered) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 2 AND SUM(calories) <= 1200 "
      "MAXIMIZE SUM(protein)");
  EnumerateOptions opts;
  opts.max_packages = 8;
  auto packages = EnumerateViaSolver(aq, opts);
  ASSERT_TRUE(packages.ok()) << packages.status().ToString();
  ASSERT_GE(packages->size(), 2u);
  std::set<std::string> fingerprints;
  double prev = 1e18;
  for (const Package& p : *packages) {
    EXPECT_TRUE(*IsValidPackage(aq, p));
    EXPECT_TRUE(fingerprints.insert(p.Fingerprint()).second)
        << "duplicate package enumerated";
    double obj = *PackageObjective(aq, p);
    EXPECT_LE(obj, prev + 1e-6) << "objective order violated";
    prev = obj;
  }
}

TEST_F(StrategiesTest, SolverEnumerationRejectsRepeat) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R REPEAT 2 SUCH THAT COUNT(*) = 2");
  EXPECT_EQ(EnumerateViaSolver(aq).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(StrategiesTest, ExhaustiveEnumerationFindsAll) {
  db::Catalog small;
  small.RegisterOrReplace(datagen::GenerateRecipes(10, 2));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 2", small);
  ASSERT_TRUE(aq.ok());
  auto all = EnumerateExhaustively(*aq, 1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 45u);  // C(10, 2)
}

// ----- Evaluator facade ------------------------------------------------------

TEST_F(StrategiesTest, EvaluatorReportsBoundsAndTiming) {
  QueryEvaluator ev(&catalog_);
  auto r = ev.Evaluate(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 1000 AND 2000 "
      "MAXIMIZE SUM(protein)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->bounds.lo, 3);
  EXPECT_LE(r->bounds.lo, 3);
  EXPECT_GT(r->num_candidates, 0u);
  EXPECT_GE(r->seconds, 0.0);
  EXPECT_TRUE(r->proven_optimal);
}

TEST_F(StrategiesTest, EvaluatorInfeasibleByPruning) {
  QueryEvaluator ev(&catalog_);
  auto r = ev.Evaluate(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) <= 1 AND SUM(calories) >= 100000");
  EXPECT_EQ(r.status().code(), StatusCode::kInfeasible);
  EXPECT_NE(r.status().message().find("pruning"), std::string::npos);
}

TEST_F(StrategiesTest, EvaluatorAutoRoutesDisjunctiveToSearch) {
  QueryEvaluator ev(&catalog_);
  auto r = ev.Evaluate(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 2 OR COUNT(*) = 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->strategy_used == Strategy::kLocalSearch ||
              r->strategy_used == Strategy::kBruteForce);
}

TEST_F(StrategiesTest, EvaluatorParseErrorsPropagate) {
  QueryEvaluator ev(&catalog_);
  EXPECT_EQ(ev.Evaluate("SELECT GARBAGE").status().code(),
            StatusCode::kParseError);
}

TEST_F(StrategiesTest, EvaluateAllHonorsLimitClause) {
  QueryEvaluator ev(&catalog_);
  auto packages = ev.EvaluateAll(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 2 AND SUM(calories) <= 1300 "
      "MAXIMIZE SUM(protein) LIMIT 5");
  ASSERT_TRUE(packages.ok()) << packages.status().ToString();
  EXPECT_LE(packages->size(), 5u);
  EXPECT_GE(packages->size(), 2u);
}

TEST_F(StrategiesTest, EvaluateAllDefaultsToOnePackage) {
  QueryEvaluator ev(&catalog_);
  auto packages = ev.EvaluateAll(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 2");
  ASSERT_TRUE(packages.ok());
  EXPECT_EQ(packages->size(), 1u);
}

TEST_F(StrategiesTest, EvaluateAllFallsBackForRepeatQueries) {
  db::Catalog small;
  small.RegisterOrReplace(datagen::GenerateRecipes(10, 41));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R REPEAT 2 "
      "SUCH THAT COUNT(*) = 2 LIMIT 4",
      small);
  ASSERT_TRUE(aq.ok());
  QueryEvaluator ev(&small);
  auto packages = ev.EvaluateAll(*aq);
  ASSERT_TRUE(packages.ok()) << packages.status().ToString();
  EXPECT_EQ(packages->size(), 4u);
  for (const Package& p : *packages) {
    EXPECT_TRUE(*IsValidPackage(*aq, p));
  }
}

TEST_F(StrategiesTest, EvaluateAllInfeasibleIsEmpty) {
  QueryEvaluator ev(&catalog_);
  auto packages = ev.EvaluateAll(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 2 AND SUM(calories) >= 1000000 LIMIT 3");
  ASSERT_TRUE(packages.ok());
  EXPECT_TRUE(packages->empty());
}

TEST_F(StrategiesTest, StrategyNamesStable) {
  EXPECT_STREQ(StrategyToString(Strategy::kAuto), "Auto");
  EXPECT_STREQ(StrategyToString(Strategy::kIlpSolver), "IlpSolver");
  EXPECT_STREQ(StrategyToString(Strategy::kBruteForce), "BruteForce");
  EXPECT_STREQ(StrategyToString(Strategy::kLocalSearch), "LocalSearch");
}

}  // namespace
}  // namespace pb::core
