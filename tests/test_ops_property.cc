// Property tests for the relational operators over randomized tables:
// operator laws (selection/ordering/grouping/join) that the package engine
// silently relies on.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "db/ops.h"
#include "db/table.h"

namespace pb::db {
namespace {

Table RandomTable(Rng& rng, size_t rows) {
  Table t("rand", Schema({{"k", ValueType::kString},
                          {"v", ValueType::kDouble},
                          {"w", ValueType::kDouble}}));
  static const char* kKeys[] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < rows; ++i) {
    Value v = rng.Bernoulli(0.1) ? Value::Null()
                                 : Value::Double(std::floor(
                                       rng.UniformReal(-50, 50)));
    t.AppendUnchecked({Value::String(kKeys[rng.Index(4)]), v,
                       Value::Double(std::floor(rng.UniformReal(0, 10)))});
  }
  return t;
}

class OpsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OpsPropertyTest, SelectAndFilterIndicesAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  Table t = RandomTable(rng, 60);
  ExprPtr pred = Binary(BinaryOp::kGt, Col("v"), LitDouble(0));
  auto selected = Select(t, pred);
  auto indices = FilterIndices(t, pred);
  ASSERT_TRUE(selected.ok());
  ASSERT_TRUE(indices.ok());
  ASSERT_EQ(selected->num_rows(), indices->size());
  for (size_t i = 0; i < indices->size(); ++i) {
    EXPECT_EQ(selected->row(i), t.row((*indices)[i]));
  }
}

TEST_P(OpsPropertyTest, SelectPartitionsWithNegation) {
  // Rows matching P plus rows matching NOT P plus NULL-P rows = all rows.
  Rng rng(static_cast<uint64_t>(GetParam()) * 11 + 2);
  Table t = RandomTable(rng, 80);
  ExprPtr pred = Binary(BinaryOp::kLe, Col("v"), LitDouble(5));
  ExprPtr negated = Unary(UnaryOp::kNot, pred->Clone());
  ExprPtr isnull = IsNull(Col("v"));
  auto yes = FilterIndices(t, pred);
  auto no = FilterIndices(t, negated);
  auto nul = FilterIndices(t, isnull);
  ASSERT_TRUE(yes.ok());
  ASSERT_TRUE(no.ok());
  ASSERT_TRUE(nul.ok());
  EXPECT_EQ(yes->size() + no->size() + nul->size(), t.num_rows());
}

TEST_P(OpsPropertyTest, OrderByIsSortedPermutation) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 3);
  Table t = RandomTable(rng, 50);
  auto sorted = OrderBy(t, "v", true);
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->num_rows(), t.num_rows());
  auto v_idx = *t.schema().IndexOf("v");
  for (size_t i = 1; i < sorted->num_rows(); ++i) {
    EXPECT_LE(sorted->at(i - 1, v_idx).Compare(sorted->at(i, v_idx)), 0);
  }
  // Multiset of rows preserved.
  std::multiset<std::string> a, b;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    a.insert(TupleToString(t.row(i)));
    b.insert(TupleToString(sorted->row(i)));
  }
  EXPECT_EQ(a, b);
}

TEST_P(OpsPropertyTest, GroupBySumsAddUpToGlobalSum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 4);
  Table t = RandomTable(rng, 70);
  auto grouped = GroupBy(t, "k",
                         {{AggFunc::kSum, Col("v"), "total"},
                          {AggFunc::kCount, nullptr, "cnt"}});
  ASSERT_TRUE(grouped.ok());
  double group_total = 0;
  int64_t group_count = 0;
  for (size_t i = 0; i < grouped->num_rows(); ++i) {
    if (!grouped->at(i, 1).is_null()) {
      group_total += *grouped->at(i, 1).ToDouble();
    }
    group_count += grouped->at(i, 2).AsInt();
  }
  auto global = Aggregate(t, AggFunc::kSum, Col("v"));
  ASSERT_TRUE(global.ok());
  double expected = global->is_null() ? 0.0 : *global->ToDouble();
  EXPECT_NEAR(group_total, expected, 1e-9);
  EXPECT_EQ(group_count, static_cast<int64_t>(t.num_rows()));
}

TEST_P(OpsPropertyTest, AggregateRowsIsLinearInMultiplicity) {
  // SUM over multiplicity-2 rows equals 2x SUM over multiplicity-1 rows.
  Rng rng(static_cast<uint64_t>(GetParam()) * 19 + 5);
  Table t = RandomTable(rng, 40);
  std::vector<size_t> rows;
  for (size_t i = 0; i < t.num_rows(); i += 3) rows.push_back(i);
  std::vector<int64_t> ones(rows.size(), 1), twos(rows.size(), 2);
  auto s1 = AggregateRows(t, AggFunc::kSum, Col("v"), rows, ones);
  auto s2 = AggregateRows(t, AggFunc::kSum, Col("v"), rows, twos);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  double a = s1->is_null() ? 0 : *s1->ToDouble();
  double b = s2->is_null() ? 0 : *s2->ToDouble();
  EXPECT_NEAR(b, 2 * a, 1e-9);
}

TEST_P(OpsPropertyTest, CrossJoinSizeIsProduct) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 23 + 6);
  Table a = RandomTable(rng, 1 + rng.Index(12));
  Table b = RandomTable(rng, 1 + rng.Index(12));
  auto j = CrossJoin(a, b, nullptr);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), a.num_rows() * b.num_rows());
  EXPECT_EQ(j->schema().num_columns(),
            a.schema().num_columns() + b.schema().num_columns());
}

TEST_P(OpsPropertyTest, ThetaJoinIsFilteredCrossJoin) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 29 + 7);
  Table a = RandomTable(rng, 10);
  Table b = RandomTable(rng, 10);
  auto plain = CrossJoin(a, b, nullptr);
  ASSERT_TRUE(plain.ok());
  // Use actual output column names (self-join-safe suffixes).
  std::string lv = plain->schema().column(1).name;   // left v
  std::string rv = plain->schema().column(4).name;   // right v
  ExprPtr pred = Binary(BinaryOp::kLt, Col(lv), Col(rv));
  auto theta = CrossJoin(a, b, pred);
  auto filtered = Select(*plain, pred);
  ASSERT_TRUE(theta.ok());
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(theta->num_rows(), filtered->num_rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpsPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace pb::db
