// Incremental package maintenance under appends (HTAP).
//
// Core level: SketchRefineState routing / split / merge invariants and the
// bit-identity contract — a maintained (incremental) solve must equal a
// cold re-solve over the same maintained partition, reuse only removes
// work. Engine level: the result cache's third state (revalidation), the
// append path, and the spilled-table full-invalidation fallback.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/evaluator.h"
#include "core/sketch_refine.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "engine/engine.h"
#include "paql/analyzer.h"

namespace pb::core {
namespace {

paql::AnalyzedQuery Analyzed(const db::Catalog& c, const std::string& t) {
  auto aq = paql::ParseAndAnalyze(t, c);
  EXPECT_TRUE(aq.ok()) << aq.status().ToString();
  return std::move(aq).value();
}

/// Appends `count` duplicates of the base table's first rows — duplicate
/// points land exactly on existing feature coordinates, so routing is
/// maximally stable (representatives rarely move).
void AppendDuplicates(db::Catalog* c, const std::string& name, size_t count) {
  auto table_or = c->GetMutable(name);
  ASSERT_TRUE(table_or.ok()) << table_or.status().ToString();
  db::Table* table = *table_or;
  std::vector<db::Tuple> rows;
  for (size_t i = 0; i < count; ++i) rows.push_back(table->row(i));
  ASSERT_TRUE(table->AppendRows(std::move(rows)).ok());
}

constexpr char kRecipesQuery[] =
    "SELECT PACKAGE(R) FROM recipes R "
    "SUCH THAT COUNT(*) = 6 AND "
    "SUM(calories) BETWEEN 2400 AND 3600 "
    "MAXIMIZE SUM(protein)";

// ----- Routing determinism ---------------------------------------------------

TEST(IncrementalTest, AppendRouteDeterministicAcrossThreadCounts) {
  // Two identically-fed states, solved at 1 thread and at PB_TEST_THREADS,
  // must agree on everything: the maintained partition, the counters, and
  // the package bit-for-bit (routing and split/merge are single-threaded;
  // the solves are thread-count-invariant).
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(400, 17));
  auto aq = Analyzed(c, kRecipesQuery);

  SketchRefineOptions opts;
  opts.partition_size = 50;
  SketchRefineState serial_state, parallel_state;

  opts.state = &serial_state;
  opts.num_threads = 1;
  auto s1 = SketchRefine(aq, opts);
  ASSERT_TRUE(s1.ok() && s1->found) << s1.status().ToString();

  opts.state = &parallel_state;
  opts.num_threads = pb::EnvInt("PB_TEST_THREADS", 8);
  auto p1 = SketchRefine(aq, opts);
  ASSERT_TRUE(p1.ok() && p1->found) << p1.status().ToString();
  EXPECT_EQ(s1->package, p1->package);

  AppendDuplicates(&c, "recipes", 4);
  aq = Analyzed(c, kRecipesQuery);

  opts.state = &serial_state;
  opts.num_threads = 1;
  auto s2 = SketchRefine(aq, opts);
  ASSERT_TRUE(s2.ok() && s2->found) << s2.status().ToString();
  EXPECT_TRUE(s2->state_reused);
  EXPECT_EQ(s2->appended_routed, 4);

  opts.state = &parallel_state;
  opts.num_threads = pb::EnvInt("PB_TEST_THREADS", 8);
  auto p2 = SketchRefine(aq, opts);
  ASSERT_TRUE(p2.ok() && p2->found) << p2.status().ToString();

  EXPECT_EQ(s2->package, p2->package)
      << s2->package.Fingerprint() << " vs " << p2->package.Fingerprint();
  EXPECT_EQ(s2->objective, p2->objective);
  EXPECT_EQ(s2->dirty_groups, p2->dirty_groups);
  EXPECT_EQ(s2->groups_reused, p2->groups_reused);
  EXPECT_EQ(s2->lp_iterations, p2->lp_iterations);
  ASSERT_EQ(serial_state.groups.size(), parallel_state.groups.size());
  for (size_t g = 0; g < serial_state.groups.size(); ++g) {
    EXPECT_EQ(serial_state.groups[g].members, parallel_state.groups[g].members)
        << "group " << g << " routed differently";
    EXPECT_EQ(serial_state.groups[g].rep, parallel_state.groups[g].rep);
  }
}

// ----- Maintained partition invariants --------------------------------------

TEST(IncrementalTest, MaintainedPartitionCoversAllCandidatesExactlyOnce) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(300, 23));
  auto aq = Analyzed(c, kRecipesQuery);

  SketchRefineOptions opts;
  opts.partition_size = 32;
  SketchRefineState state;
  opts.state = &state;
  ASSERT_TRUE(SketchRefine(aq, opts).ok());

  AppendDuplicates(&c, "recipes", 10);
  aq = Analyzed(c, kRecipesQuery);
  auto r = SketchRefine(aq, opts);
  ASSERT_TRUE(r.ok() && r->found) << r.status().ToString();
  EXPECT_TRUE(r->state_reused);

  std::set<size_t> seen;
  for (const auto& g : state.groups) {
    ASSERT_FALSE(g.members.empty());
    for (size_t m : g.members) {
      EXPECT_TRUE(seen.insert(m).second) << "candidate " << m << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), 310u);
  EXPECT_EQ(state.n_candidates, 310u);
}

// ----- Split / merge thresholds ----------------------------------------------

class ThresholdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Schema schema;
    ASSERT_TRUE(
        schema.AddColumn({"value", db::ValueType::kDouble}).ok());
    db::Table t("items", schema);
    for (int i = 0; i < 64; ++i) {
      t.StartRow().Double(static_cast<double>(i)).Finish();
    }
    catalog_.RegisterOrReplace(std::move(t));
  }

  paql::AnalyzedQuery Query() {
    return Analyzed(catalog_,
                    "SELECT PACKAGE(T) FROM items T "
                    "SUCH THAT COUNT(*) = 2 AND SUM(value) <= 100000 "
                    "MAXIMIZE SUM(value)");
  }

  void AppendValues(const std::vector<double>& values) {
    auto table_or = catalog_.GetMutable("items");
    ASSERT_TRUE(table_or.ok());
    std::vector<db::Tuple> rows;
    for (double v : values) rows.push_back({db::Value::Double(v)});
    ASSERT_TRUE((*table_or)->AppendRows(std::move(rows)).ok());
  }

  db::Catalog catalog_;
};

TEST_F(ThresholdTest, GroupSplitsPastThreshold) {
  auto aq = Query();
  SketchRefineOptions opts;
  opts.partition_size = 16;  // default split threshold = 32
  SketchRefineState state;
  opts.state = &state;
  auto r1 = SketchRefine(aq, opts);
  ASSERT_TRUE(r1.ok() && r1->found) << r1.status().ToString();
  const size_t groups_before = state.groups.size();

  // 40 duplicates of value 0.0 all route to one group, pushing it far past
  // the 2 * tau split threshold: the same maintained call must re-split it.
  AppendValues(std::vector<double>(40, 0.0));
  aq = Query();
  auto r2 = SketchRefine(aq, opts);
  ASSERT_TRUE(r2.ok() && r2->found) << r2.status().ToString();
  EXPECT_TRUE(r2->state_reused);
  EXPECT_EQ(r2->appended_routed, 40);
  EXPECT_GE(r2->groups_split, 1);
  EXPECT_GT(state.groups.size(), groups_before);
  for (const auto& g : state.groups) {
    EXPECT_LE(g.members.size(), 32u) << "a group exceeds the split threshold";
  }
}

TEST_F(ThresholdTest, FarAppendStartsSingletonThenMergeAbsorbsIt) {
  auto aq = Query();
  SketchRefineOptions opts;
  opts.partition_size = 16;
  SketchRefineState state;
  opts.state = &state;
  auto r1 = SketchRefine(aq, opts);
  ASSERT_TRUE(r1.ok() && r1->found) << r1.status().ToString();
  const size_t groups_before = state.groups.size();

  // A point far outside the frozen feature range, with a tight routing
  // radius: it must start its own singleton group instead of stretching
  // the nearest one.
  AppendValues({100000.0});
  aq = Query();
  opts.route_max_distance = 0.5;
  auto r2 = SketchRefine(aq, opts);
  ASSERT_TRUE(r2.ok() && r2->found) << r2.status().ToString();
  EXPECT_EQ(r2->appended_routed, 1);
  EXPECT_EQ(state.groups.size(), groups_before + 1);

  // Now allow merging: the singleton (< merge_min_size) folds into its
  // nearest neighbour.
  opts.route_max_distance = 0.0;
  opts.merge_min_size = 4;
  auto r3 = SketchRefine(aq, opts);
  ASSERT_TRUE(r3.ok() && r3->found) << r3.status().ToString();
  EXPECT_GE(r3->groups_merged, 1);
  EXPECT_EQ(state.groups.size(), groups_before);
  std::set<size_t> seen;
  for (const auto& g : state.groups) {
    for (size_t m : g.members) seen.insert(m);
  }
  EXPECT_EQ(seen.size(), 65u) << "merge lost or duplicated candidates";
}

// ----- Bit-identity ----------------------------------------------------------

TEST(IncrementalTest, IncrementalSolveBitIdenticalToColdOverSamePartition) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(400, 41));
  auto aq = Analyzed(c, kRecipesQuery);

  SketchRefineOptions opts;
  opts.partition_size = 50;
  SketchRefineState state;
  opts.state = &state;
  auto r1 = SketchRefine(aq, opts);
  ASSERT_TRUE(r1.ok() && r1->found) << r1.status().ToString();

  AppendDuplicates(&c, "recipes", 4);
  aq = Analyzed(c, kRecipesQuery);

  // The cold baseline: the SAME maintained partition with every cached
  // sub-solution and warm start dropped — what a from-scratch re-solve of
  // this partition would do.
  SketchRefineState cold_state = state;

  auto incremental = SketchRefine(aq, opts);
  ASSERT_TRUE(incremental.ok() && incremental->found)
      << incremental.status().ToString();

  cold_state.InvalidateSolutions();
  for (auto& g : cold_state.groups) g.dirty = true;
  SketchRefineOptions cold_opts = opts;
  cold_opts.state = &cold_state;
  cold_opts.reuse_group_solutions = false;
  auto cold = SketchRefine(aq, cold_opts);
  ASSERT_TRUE(cold.ok() && cold->found) << cold.status().ToString();

  EXPECT_EQ(incremental->package, cold->package)
      << incremental->package.Fingerprint() << " vs "
      << cold->package.Fingerprint();
  EXPECT_EQ(incremental->objective, cold->objective);
  EXPECT_TRUE(*IsValidPackage(aq, incremental->package));
  EXPECT_EQ(cold->groups_reused, 0);
  EXPECT_LE(incremental->lp_iterations, cold->lp_iterations);
}

TEST(IncrementalTest, CleanRepeatReusesEveryGroup) {
  // No append between calls: every group is clean and every residual
  // repeats, so the second call must answer the whole refine phase from
  // cached sub-solutions.
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(400, 17));
  auto aq = Analyzed(c, kRecipesQuery);

  SketchRefineOptions opts;
  opts.partition_size = 50;
  SketchRefineState state;
  opts.state = &state;
  auto r1 = SketchRefine(aq, opts);
  ASSERT_TRUE(r1.ok() && r1->found) << r1.status().ToString();
  EXPECT_FALSE(r1->state_reused);
  EXPECT_EQ(r1->groups_reused, 0);

  auto r2 = SketchRefine(aq, opts);
  ASSERT_TRUE(r2.ok() && r2->found) << r2.status().ToString();
  EXPECT_TRUE(r2->state_reused);
  EXPECT_EQ(r2->dirty_groups, 0);
  EXPECT_GT(r2->groups_reused, 0);
  EXPECT_EQ(r2->package, r1->package);
  EXPECT_EQ(r2->objective, r1->objective);
}

}  // namespace
}  // namespace pb::core

namespace pb::engine {
namespace {

EngineOptions IncrementalOptions(bool reuse) {
  EngineOptions o;
  o.num_threads = 2;
  o.incremental_maintenance = true;
  o.maintenance_reuse_solutions = reuse;
  o.sketch_partition_size = 50;
  return o;
}

constexpr char kEngineQuery[] =
    "SELECT PACKAGE(R) FROM recipes R "
    "SUCH THAT COUNT(*) = 6 AND "
    "SUM(calories) BETWEEN 2400 AND 3600 "
    "MAXIMIZE SUM(protein)";

std::vector<db::Tuple> DuplicateRows(size_t n, uint64_t seed, size_t count) {
  const db::Table base = datagen::GenerateRecipes(n, seed);
  std::vector<db::Tuple> rows;
  for (size_t i = 0; i < count; ++i) rows.push_back(base.row(i));
  return rows;
}

TEST(EngineIncrementalTest, RevalidatedCacheBitIdenticalToColdReSolve) {
  // Engine A: maintained path with reuse. Engine B: identical history with
  // reuse off (every group re-solved cold). The revalidated answer after an
  // append must match B's bit-for-bit, with counters proving A skipped
  // solver work.
  Engine a(IncrementalOptions(/*reuse=*/true));
  Engine b(IncrementalOptions(/*reuse=*/false));
  for (Engine* e : {&a, &b}) {
    ASSERT_TRUE(e->GenerateDataset("recipes", 400, 7).ok());
    QueryResponse first = e->ExecuteQuery(0, kEngineQuery);
    ASSERT_TRUE(first.ok()) << first.status.ToString();
    EXPECT_EQ(first.strategy, "SketchRefine");
    EXPECT_EQ(first.table_rows, 400u);
  }

  // Unchanged catalog: the cached result replays without any solve.
  QueryResponse cached = a.ExecuteQuery(0, kEngineQuery);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.result_cache_hit);
  EXPECT_FALSE(cached.revalidated);

  for (Engine* e : {&a, &b}) {
    auto outcome = e->AppendRows("recipes", DuplicateRows(400, 7, 4));
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->rows, 4u);
    EXPECT_EQ(outcome->table_rows, 404u);
    EXPECT_FALSE(outcome->full_invalidation);
  }

  QueryResponse reval = a.ExecuteQuery(0, kEngineQuery);
  ASSERT_TRUE(reval.ok()) << reval.status.ToString();
  EXPECT_FALSE(reval.result_cache_hit);
  EXPECT_TRUE(reval.revalidated);
  EXPECT_EQ(reval.table_rows, 404u);
  EXPECT_GT(reval.groups_reused, 0) << "append dirtied every group";
  EXPECT_GT(reval.dirty_groups, 0);
  EXPECT_GE(reval.maintenance_ms, 0.0);

  QueryResponse cold = b.ExecuteQuery(0, kEngineQuery);
  ASSERT_TRUE(cold.ok()) << cold.status.ToString();
  EXPECT_EQ(cold.groups_reused, 0);
  EXPECT_EQ(reval.package, cold.package)
      << reval.package.Fingerprint() << " vs " << cold.package.Fingerprint();
  EXPECT_EQ(reval.objective, cold.objective);
  // Reuse elides solver work: the revalidation must be cheaper than the
  // cold re-solve on the substrate-cost metric.
  EXPECT_LT(reval.lp_iterations, cold.lp_iterations);

  EXPECT_EQ(a.stats().revalidations, 1);
  EXPECT_EQ(a.stats().appends, 1);
  EXPECT_EQ(a.stats().rows_appended, 4);

  // The refreshed entry is cached again: an immediate repeat is a plain
  // hit that replays the revalidated package.
  QueryResponse again = a.ExecuteQuery(0, kEngineQuery);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.result_cache_hit);
  EXPECT_EQ(again.package, reval.package);
}

TEST(EngineIncrementalTest, ThreadBudgetDoesNotChangeMaintainedAnswer) {
  const int threads = pb::EnvInt("PB_TEST_THREADS", 8);
  Engine serial(IncrementalOptions(true));
  Engine parallel(IncrementalOptions(true));
  QueryBudget serial_budget, parallel_budget;
  serial_budget.compute.threads = 1;
  parallel_budget.compute.threads = threads;

  for (Engine* e : {&serial, &parallel}) {
    ASSERT_TRUE(e->GenerateDataset("recipes", 400, 17).ok());
  }
  QueryResponse s1 = serial.ExecuteQuery(0, kEngineQuery, serial_budget);
  QueryResponse p1 = parallel.ExecuteQuery(0, kEngineQuery, parallel_budget);
  ASSERT_TRUE(s1.ok() && p1.ok());
  EXPECT_EQ(s1.package, p1.package);

  for (Engine* e : {&serial, &parallel}) {
    ASSERT_TRUE(e->AppendRows("recipes", DuplicateRows(400, 17, 4)).ok());
  }
  QueryResponse s2 = serial.ExecuteQuery(0, kEngineQuery, serial_budget);
  QueryResponse p2 = parallel.ExecuteQuery(0, kEngineQuery, parallel_budget);
  ASSERT_TRUE(s2.ok() && p2.ok());
  EXPECT_TRUE(s2.revalidated);
  EXPECT_TRUE(p2.revalidated);
  EXPECT_EQ(s2.package, p2.package)
      << s2.package.Fingerprint() << " vs " << p2.package.Fingerprint();
  EXPECT_EQ(s2.objective, p2.objective);
}

TEST(EngineIncrementalTest, SpilledAppendFallsBackToFullInvalidation) {
  Engine e(IncrementalOptions(true));
  ASSERT_TRUE(e.GenerateDataset("recipes", 300, 23).ok());
  QueryResponse before = e.ExecuteQuery(0, kEngineQuery);
  ASSERT_TRUE(before.ok()) << before.status.ToString();

  ASSERT_TRUE(e.SpillTable("recipes").ok());
  auto outcome = e.AppendRows("recipes", DuplicateRows(300, 23, 5));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->full_invalidation);
  EXPECT_EQ(outcome->table_rows, 305u);
  EXPECT_EQ(e.stats().maintenance_full_invalidations, 1);

  // The generation bump invalidated the cached result AND the maintained
  // partition: the re-run is a fresh (non-revalidated) solve over the
  // unspilled, appended table.
  QueryResponse after = e.ExecuteQuery(0, kEngineQuery);
  ASSERT_TRUE(after.ok()) << after.status.ToString();
  EXPECT_FALSE(after.result_cache_hit);
  EXPECT_FALSE(after.revalidated);
  EXPECT_EQ(after.table_rows, 305u);
}

TEST(EngineIncrementalTest, AppendBatchIsAllOrNothing) {
  Engine e(IncrementalOptions(true));
  ASSERT_TRUE(e.GenerateDataset("recipes", 50, 3).ok());
  std::vector<db::Tuple> rows = DuplicateRows(50, 3, 2);
  rows.push_back({db::Value::Int(1)});  // wrong arity
  auto outcome = e.AppendRows("recipes", std::move(rows));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  // Nothing committed: the valid prefix must not have landed.
  for (const auto& info : e.Tables()) {
    if (info.name == "recipes") EXPECT_EQ(info.rows, 50u);
  }
  EXPECT_EQ(e.stats().appends, 0);
}

}  // namespace
}  // namespace pb::engine
