// Tests for the out-of-core storage subsystem: zone maps, segment-file
// round trips, spilled-column bit-identity, block-cache eviction, storage
// budgets, and the end-to-end out-of-core engine acceptance scenario
// (spilled lineitem under a cache smaller than the data solves
// bit-identically to the resident baseline, with zone-map skips observed).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datagen/lineitem.h"
#include "db/column.h"
#include "db/table.h"
#include "engine/engine.h"
#include "storage/block.h"
#include "storage/block_cache.h"
#include "storage/segment_file.h"
#include "storage/storage_budget.h"

namespace pb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ----- Zone maps -------------------------------------------------------------

TEST(ZoneMapTest, AllNullBlock) {
  std::vector<double> vals(16, 0.0);
  storage::ZoneMap z = storage::ComputeZoneMap(
      vals.size(), [&](size_t i) { return vals[i]; },
      [](size_t) { return true; });
  EXPECT_TRUE(z.all_null());
  EXPECT_FALSE(z.has_minmax());
  EXPECT_EQ(z.null_count, 16);
  EXPECT_EQ(z.non_null_count, 0);
}

TEST(ZoneMapTest, SingleValueBlock) {
  storage::ZoneMap z = storage::ComputeZoneMap(
      8, [](size_t) { return 42.5; }, [](size_t) { return false; });
  EXPECT_TRUE(z.has_minmax());
  EXPECT_TRUE(z.constant());
  EXPECT_DOUBLE_EQ(z.min, 42.5);
  EXPECT_DOUBLE_EQ(z.max, 42.5);
  EXPECT_EQ(z.non_null_count, 8);
}

TEST(ZoneMapTest, MixedBlockAccumulatesInIndexOrder) {
  std::vector<double> vals = {3.0, -1.0, 0.0, 7.5};
  std::vector<bool> null = {false, false, true, false};
  storage::ZoneMap z = storage::ComputeZoneMap(
      vals.size(), [&](size_t i) { return vals[i]; },
      [&](size_t i) { return null[i]; });
  EXPECT_DOUBLE_EQ(z.min, -1.0);
  EXPECT_DOUBLE_EQ(z.max, 7.5);
  EXPECT_DOUBLE_EQ(z.sum, 3.0 + -1.0 + 7.5);
  EXPECT_EQ(z.null_count, 1);
  EXPECT_EQ(z.non_null_count, 3);
}

// ----- Segment file ----------------------------------------------------------

storage::NumericBlock MakeIntBlock(const std::vector<int64_t>& vals,
                                   const std::vector<bool>& nulls) {
  storage::NumericBlock b;
  b.type = storage::BlockType::kInt64;
  b.count = vals.size();
  b.ints = vals;
  b.null_words.assign(storage::NullWordCount(vals.size()), 0);
  for (size_t i = 0; i < nulls.size(); ++i) {
    if (nulls[i]) b.null_words[i >> 6] |= uint64_t{1} << (i & 63);
  }
  b.zone = storage::ComputeZoneMap(
      b.count, [&](size_t i) { return static_cast<double>(vals[i]); },
      [&](size_t i) { return nulls[i]; });
  return b;
}

TEST(SegmentFileTest, WriteReadRoundTrip) {
  auto file_or = storage::SegmentFile::Create(TempPath("seg_roundtrip.seg"));
  ASSERT_TRUE(file_or.ok()) << file_or.status().ToString();
  std::shared_ptr<storage::SegmentFile> file = *file_or;

  std::vector<int64_t> vals = {5, -3, 0, 99, 7};
  std::vector<bool> nulls = {false, false, true, false, false};
  auto loc_or = file->WriteBlock(MakeIntBlock(vals, nulls));
  ASSERT_TRUE(loc_or.ok()) << loc_or.status().ToString();

  auto block_or = file->ReadBlock(*loc_or);
  ASSERT_TRUE(block_or.ok()) << block_or.status().ToString();
  const storage::NumericBlock& b = *block_or;
  EXPECT_EQ(b.type, storage::BlockType::kInt64);
  ASSERT_EQ(b.count, vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(b.ints[i], vals[i]) << "slot " << i;
    EXPECT_EQ(b.IsNull(i), nulls[i]) << "slot " << i;
  }
  EXPECT_EQ(b.zone.null_count, 1);
  EXPECT_DOUBLE_EQ(b.zone.min, -3.0);
  EXPECT_DOUBLE_EQ(b.zone.max, 99.0);
}

TEST(SegmentFileTest, CorruptPayloadFailsChecksum) {
  const std::string path = TempPath("seg_corrupt.seg");
  auto file_or = storage::SegmentFile::Create(path);
  ASSERT_TRUE(file_or.ok());
  std::shared_ptr<storage::SegmentFile> file = *file_or;
  auto loc_or = file->WriteBlock(
      MakeIntBlock({1, 2, 3, 4}, {false, false, false, false}));
  ASSERT_TRUE(loc_or.ok());

  // Flip the first payload byte through the still-linked path (the 72-byte
  // block header precedes the payload; the checksum covers the payload).
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(loc_or->offset) + 72, SEEK_SET),
              0);
    const char x = 0x5A;
    ASSERT_EQ(std::fwrite(&x, 1, 1, f), 1u);
    std::fclose(f);
  }
  auto block_or = file->ReadBlock(*loc_or);
  EXPECT_FALSE(block_or.ok());
}

TEST(SegmentFileTest, OpenForReadValidatesHeaderAndReadsBack) {
  const std::string path = TempPath("seg_reopen.seg");
  storage::BlockLocator loc;
  {
    // Writer scope: keep the file on disk after close so a second
    // SegmentFile can reopen it (the default Create unlinks in ~).
    auto file_or = storage::SegmentFile::Create(path,
                                               /*unlink_on_close=*/false);
    ASSERT_TRUE(file_or.ok()) << file_or.status().ToString();
    auto loc_or = (*file_or)->WriteBlock(
        MakeIntBlock({11, 22, 33}, {false, true, false}));
    ASSERT_TRUE(loc_or.ok()) << loc_or.status().ToString();
    loc = *loc_or;
  }
  auto reader_or = storage::SegmentFile::OpenForRead(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  auto block_or = (*reader_or)->ReadBlock(loc);
  ASSERT_TRUE(block_or.ok()) << block_or.status().ToString();
  EXPECT_EQ(block_or->count, 3u);
  EXPECT_EQ(block_or->ints[0], 11);
  EXPECT_TRUE(block_or->IsNull(1));
  std::remove(path.c_str());
}

TEST(SegmentFileTest, OpenForReadRejectsForeignAndTruncatedFiles) {
  const std::string not_segment = TempPath("seg_foreign.bin");
  {
    std::FILE* f = std::fopen(not_segment.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a segment file", f);
    std::fclose(f);
  }
  EXPECT_FALSE(storage::SegmentFile::OpenForRead(not_segment).ok());
  std::remove(not_segment.c_str());

  const std::string truncated = TempPath("seg_truncated.seg");
  {
    std::FILE* f = std::fopen(truncated.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("PBSEG0", f);  // magic cut short of the 16-byte header
    std::fclose(f);
  }
  EXPECT_FALSE(storage::SegmentFile::OpenForRead(truncated).ok());
  std::remove(truncated.c_str());
}

TEST(SegmentFileTest, CorruptCountFieldFailsCleanly) {
  // A tampered `count` near 2^61 once wrapped `count * 8` past 64 bits and
  // drove resize() into std::length_error; the reader must answer with a
  // Status instead (found hardening the reader for the corrupt-input
  // fuzzer, fuzz/fuzz_segment.cc).
  const std::string path = TempPath("seg_badcount.seg");
  auto file_or = storage::SegmentFile::Create(path);
  ASSERT_TRUE(file_or.ok());
  std::shared_ptr<storage::SegmentFile> file = *file_or;
  auto loc_or = file->WriteBlock(
      MakeIntBlock({1, 2, 3, 4}, {false, false, false, false}));
  ASSERT_TRUE(loc_or.ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    // `count` lives 8 bytes into the block header.
    ASSERT_EQ(std::fseek(f, static_cast<long>(loc_or->offset) + 8, SEEK_SET),
              0);
    // (1 << 61) + 4: the * 8 wraps back to the true 32 payload bytes, so a
    // naive `count * 8 + nulls * 8 == payload_bytes` check still passes.
    const uint64_t huge = (1ull << 61) + 4;
    ASSERT_EQ(std::fwrite(&huge, sizeof(huge), 1, f), 1u);
    std::fclose(f);
  }
  auto block_or = file->ReadBlock(*loc_or);
  EXPECT_FALSE(block_or.ok());
}

// ----- Spilled columns -------------------------------------------------------

/// An INT column with NULLs placed on and around every block boundary for
/// block size 8: slots 7, 8, 9 of each 16-slot stretch.
db::Column BoundaryNullIntColumn(size_t n) {
  db::Column col(db::ValueType::kInt);
  for (size_t i = 0; i < n; ++i) {
    if (i % 16 == 7 || i % 16 == 8 || i % 16 == 9) {
      col.AppendNull();
    } else {
      col.AppendInt(static_cast<int64_t>(i) * 3 - 50);
    }
  }
  return col;
}

TEST(ColumnSpillTest, BlockBoundaryNullBitmapsSurviveSpill) {
  const size_t n = 100;  // 13 blocks of 8, last one partial
  db::Column resident = BoundaryNullIntColumn(n);
  db::Column spilled = resident;

  auto file_or = storage::SegmentFile::Create(TempPath("seg_nulls.seg"));
  ASSERT_TRUE(file_or.ok());
  storage::BlockCache cache(/*budget_bytes=*/0);  // unbounded
  ASSERT_TRUE(spilled.Spill(*file_or, &cache, /*block_size=*/8).ok());
  ASSERT_TRUE(spilled.spilled());
  ASSERT_EQ(spilled.num_blocks(), (n + 7) / 8);

  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(spilled.IsNull(i), resident.IsNull(i)) << "slot " << i;
    EXPECT_TRUE(spilled.GetValue(i) == resident.GetValue(i)) << "slot " << i;
  }

  // The block API agrees with the per-cell one across boundaries.
  db::NumericColumnView view = spilled.NumericView();
  for (size_t b = 0; b < view.num_blocks(); ++b) {
    db::NumericColumnView::BlockSpan span = view.block(b);
    ASSERT_TRUE(span.valid()) << view.status().ToString();
    for (size_t k = 0; k < span.count; ++k) {
      const size_t i = span.offset + k;
      if (view.IsNull(i)) continue;
      EXPECT_EQ(span.Value(k),
                static_cast<double>(resident.GetValue(i).AsInt()))
          << "slot " << i;
    }
  }
  EXPECT_TRUE(view.status().ok());
}

TEST(ColumnSpillTest, DoubleRoundTripIsBitIdentical) {
  db::Column resident(db::ValueType::kDouble);
  std::vector<double> vals = {0.0,  -0.0, 1e-300, -1e300, 3.14159265358979,
                              42.0, 1.0 / 3.0, 2e17};
  for (size_t i = 0; i < 50; ++i) {
    resident.AppendDouble(vals[i % vals.size()] * (1.0 + i * 1e-9));
  }
  db::Column spilled = resident;
  auto file_or = storage::SegmentFile::Create(TempPath("seg_dbl.seg"));
  ASSERT_TRUE(file_or.ok());
  storage::BlockCache cache(0);
  ASSERT_TRUE(spilled.Spill(*file_or, &cache, 8).ok());

  db::NumericColumnView rv = resident.NumericView();
  db::NumericColumnView sv = spilled.NumericView();
  for (size_t i = 0; i < resident.size(); ++i) {
    // Exact equality: spill is a raw binary round trip.
    EXPECT_EQ(sv[i], rv[i]) << "slot " << i;
  }
  EXPECT_TRUE(sv.status().ok());
}

TEST(ColumnSpillTest, ZoneMapsMatchResidentBaseline) {
  const size_t n = 77;
  db::Column resident = BoundaryNullIntColumn(n);
  resident.SetBlockSize(8);
  db::Column spilled = BoundaryNullIntColumn(n);
  auto file_or = storage::SegmentFile::Create(TempPath("seg_zones.seg"));
  ASSERT_TRUE(file_or.ok());
  storage::BlockCache cache(0);
  ASSERT_TRUE(spilled.Spill(*file_or, &cache, 8).ok());

  const storage::ZoneMap* rz = resident.ZoneMaps();
  const storage::ZoneMap* sz = spilled.ZoneMaps();
  ASSERT_NE(rz, nullptr);
  ASSERT_NE(sz, nullptr);
  ASSERT_EQ(resident.num_blocks(), spilled.num_blocks());
  for (size_t b = 0; b < resident.num_blocks(); ++b) {
    EXPECT_EQ(rz[b].null_count, sz[b].null_count) << "block " << b;
    EXPECT_EQ(rz[b].non_null_count, sz[b].non_null_count) << "block " << b;
    EXPECT_EQ(rz[b].has_minmax(), sz[b].has_minmax()) << "block " << b;
    if (rz[b].has_minmax()) {
      EXPECT_EQ(rz[b].min, sz[b].min) << "block " << b;
      EXPECT_EQ(rz[b].max, sz[b].max) << "block " << b;
      EXPECT_EQ(rz[b].sum, sz[b].sum) << "block " << b;
    }
  }
}

TEST(ColumnSpillTest, NonNumericColumnsStayResident) {
  db::Column col(db::ValueType::kString);
  col.AppendString("a");
  col.AppendString("b");
  auto file_or = storage::SegmentFile::Create(TempPath("seg_str.seg"));
  ASSERT_TRUE(file_or.ok());
  storage::BlockCache cache(0);
  EXPECT_TRUE(col.Spill(*file_or, &cache).ok());
  EXPECT_FALSE(col.spilled());
  EXPECT_EQ(col.GetValue(1).AsString(), "b");
}

// ----- Block cache -----------------------------------------------------------

TEST(BlockCacheTest, OneBlockCacheEvictsDeterministically) {
  const size_t n = 32;  // 4 blocks of 8
  db::Column col(db::ValueType::kInt);
  for (size_t i = 0; i < n; ++i) col.AppendInt(static_cast<int64_t>(i));
  auto file_or = storage::SegmentFile::Create(TempPath("seg_evict.seg"));
  ASSERT_TRUE(file_or.ok());
  // Budget of one byte: every unpinned block is evicted immediately, so the
  // cache holds exactly the pinned block — the 1-block configuration.
  storage::BlockCache cache(1);
  ASSERT_TRUE(col.Spill(*file_or, &cache, 8).ok());

  std::vector<double> first_pass, second_pass;
  for (int pass = 0; pass < 2; ++pass) {
    db::NumericColumnView view = col.NumericView();
    std::vector<double>& out = pass == 0 ? first_pass : second_pass;
    for (size_t b = 0; b < view.num_blocks(); ++b) {
      db::NumericColumnView::BlockSpan span = view.block(b);
      ASSERT_TRUE(span.valid()) << view.status().ToString();
      for (size_t k = 0; k < span.count; ++k) out.push_back(span.Value(k));
    }
    ASSERT_TRUE(view.status().ok());
  }
  EXPECT_EQ(first_pass, second_pass);
  ASSERT_EQ(first_pass.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(first_pass[i], double(i));

  // Determinism of the counters themselves: every pin was a miss (the
  // previous block was evicted the moment it was unpinned), and every
  // unpin triggered exactly one eviction.
  const storage::BlockCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 8u);
  EXPECT_EQ(s.evictions, 8u);
  EXPECT_EQ(s.bytes_pinned, 0);
  EXPECT_EQ(s.bytes_cached, 0);
}

TEST(BlockCacheTest, UnboundedCacheHitsOnSecondPass) {
  const size_t n = 32;
  db::Column col(db::ValueType::kInt);
  for (size_t i = 0; i < n; ++i) col.AppendInt(static_cast<int64_t>(i));
  auto file_or = storage::SegmentFile::Create(TempPath("seg_hits.seg"));
  ASSERT_TRUE(file_or.ok());
  storage::BlockCache cache(0);
  ASSERT_TRUE(col.Spill(*file_or, &cache, 8).ok());

  for (int pass = 0; pass < 2; ++pass) {
    db::NumericColumnView view = col.NumericView();
    for (size_t b = 0; b < view.num_blocks(); ++b) {
      ASSERT_TRUE(view.block(b).valid());
    }
  }
  const storage::BlockCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.evictions, 0u);
}

// ----- Storage budget --------------------------------------------------------

TEST(StorageBudgetTest, BulkPinsRefusedPerCellReadsSurvive) {
  const size_t n = 16;
  db::Column col(db::ValueType::kInt);
  for (size_t i = 0; i < n; ++i) col.AppendInt(static_cast<int64_t>(i) + 100);
  auto file_or = storage::SegmentFile::Create(TempPath("seg_budget.seg"));
  ASSERT_TRUE(file_or.ok());
  storage::BlockCache cache(0);
  ASSERT_TRUE(col.Spill(*file_or, &cache, 8).ok());

  storage::StorageBudget budget = storage::StorageBudget::Limited(1);
  storage::StorageBudgetScope scope(budget);

  db::NumericColumnView view = col.NumericView();
  db::NumericColumnView::BlockSpan span = view.block(0);
  EXPECT_FALSE(span.valid());
  EXPECT_EQ(view.status().code(), StatusCode::kResourceExhausted);

  // Per-cell compatibility access never charges the budget: correctness
  // does not depend on the storage policy.
  EXPECT_EQ(col.GetValue(3).AsInt(), 103);
}

TEST(StorageBudgetTest, CountOnlyBudgetTracksPeak) {
  const size_t n = 16;
  db::Column col(db::ValueType::kInt);
  for (size_t i = 0; i < n; ++i) col.AppendInt(static_cast<int64_t>(i));
  auto file_or = storage::SegmentFile::Create(TempPath("seg_peak.seg"));
  ASSERT_TRUE(file_or.ok());
  storage::BlockCache cache(0);
  ASSERT_TRUE(col.Spill(*file_or, &cache, 8).ok());

  storage::StorageBudget budget = storage::StorageBudget::Limited(0);
  {
    storage::StorageBudgetScope scope(budget);
    db::NumericColumnView view = col.NumericView();
    for (size_t b = 0; b < view.num_blocks(); ++b) {
      ASSERT_TRUE(view.block(b).valid());
    }
    ASSERT_TRUE(view.status().ok());
  }
  EXPECT_GT(budget.peak_pinned_bytes(), 0);
  EXPECT_EQ(budget.pinned_bytes(), 0);
}

// ----- Out-of-core engine acceptance -----------------------------------------

TEST(OutOfCoreEngineTest, SpilledLineitemSolvesBitIdenticallyWithZoneSkips) {
  const size_t n = 600;
  const uint64_t seed = 7;
  const std::string paql =
      "SELECT PACKAGE(L) FROM lineitem L SUCH THAT COUNT(*) = 8 AND "
      "SUM(quantity) <= 200 MAXIMIZE SUM(revenue)";

  // Baseline: fully resident table, unlimited RAM.
  engine::Engine resident_engine;
  ASSERT_TRUE(resident_engine.RegisterTable(datagen::GenerateLineitems(n, seed))
                  .ok());
  engine::QueryResponse base = resident_engine.ExecuteQuery(0, paql);
  ASSERT_TRUE(base.ok()) << base.status.ToString();
  ASSERT_TRUE(base.proven_optimal);

  // Out-of-core: same data spilled at block size 64 (10 blocks per numeric
  // column) behind a cache that holds ~2 blocks — the data does not fit.
  db::Table table = datagen::GenerateLineitems(n, seed);
  storage::BlockCache small_cache(/*budget_bytes=*/2 * 64 * 8 + 64);
  ASSERT_TRUE(table
                  .SpillToDisk(TempPath("lineitem_ooc.seg"), /*block_size=*/64,
                               &small_cache)
                  .ok());
  ASSERT_TRUE(table.spilled());
  engine::Engine ooc_engine;
  ASSERT_TRUE(ooc_engine.RegisterTable(std::move(table)).ok());
  engine::QueryResponse ooc = ooc_engine.ExecuteQuery(0, paql);
  ASSERT_TRUE(ooc.ok()) << ooc.status.ToString();

  // Bit-identity: same package, same multiplicities, same objective.
  EXPECT_EQ(ooc.package.rows, base.package.rows);
  EXPECT_EQ(ooc.package.multiplicity, base.package.multiplicity);
  EXPECT_EQ(ooc.objective, base.objective);
  EXPECT_EQ(ooc.proven_optimal, base.proven_optimal);

  // The pruner bounded SUM(quantity) from zone maps: with no WHERE clause
  // the candidate list is dense/ascending, so every full block is skipped.
  EXPECT_GT(ooc.zone_map_skipped_blocks, 0);
  // The cache really was too small for the data: blocks were evicted.
  EXPECT_GT(small_cache.stats().evictions, 0u);

  // Identical zone granularity on a resident table reproduces the same
  // skip count — the counter is layout-independent.
  engine::Engine sized_engine;
  db::Table sized = datagen::GenerateLineitems(n, seed);
  sized.SetBlockSize(64);
  ASSERT_TRUE(sized_engine.RegisterTable(std::move(sized)).ok());
  engine::QueryResponse sized_resp = sized_engine.ExecuteQuery(0, paql);
  ASSERT_TRUE(sized_resp.ok());
  EXPECT_EQ(sized_resp.zone_map_skipped_blocks, ooc.zone_map_skipped_blocks);
  EXPECT_EQ(sized_resp.package.rows, base.package.rows);
}

TEST(OutOfCoreEngineTest, EngineSpillTableKeepsQueriesWorking) {
  engine::Engine engine;
  ASSERT_TRUE(engine.GenerateDataset("lineitem", 300, 11).ok());
  const std::string paql =
      "SELECT PACKAGE(L) FROM lineitem L SUCH THAT COUNT(*) = 5 AND "
      "SUM(quantity) <= 120 MAXIMIZE SUM(revenue)";
  engine::QueryResponse before = engine.ExecuteQuery(0, paql);
  ASSERT_TRUE(before.ok()) << before.status.ToString();

  ASSERT_TRUE(engine.SpillTable("lineitem", "", 64).ok());
  // Spilling twice is an error (the table is already read-only on disk).
  EXPECT_FALSE(engine.SpillTable("lineitem", "", 64).ok());

  engine::QueryResponse after = engine.ExecuteQuery(0, paql);
  ASSERT_TRUE(after.ok()) << after.status.ToString();
  EXPECT_EQ(after.package.rows, before.package.rows);
  EXPECT_EQ(after.objective, before.objective);

  // The engine's stats surface the process block cache.
  const engine::EngineStats s = engine.stats();
  EXPECT_GE(s.block_cache_hits + s.block_cache_misses, 0);
}

TEST(OutOfCoreEngineTest, QueryBudgetLimitsPinnedBytes) {
  engine::Engine engine;
  db::Table table = datagen::GenerateLineitems(200, 3);
  storage::BlockCache cache(0);
  ASSERT_TRUE(
      table.SpillToDisk(TempPath("lineitem_budget.seg"), 32, &cache).ok());
  ASSERT_TRUE(engine.RegisterTable(std::move(table)).ok());

  const std::string paql =
      "SELECT PACKAGE(L) FROM lineitem L SUCH THAT COUNT(*) = 4 AND "
      "SUM(quantity) <= 100 MAXIMIZE SUM(revenue)";
  engine::QueryBudget tight;
  tight.max_pinned_bytes = 1;  // refuse every bulk pin
  engine::QueryResponse refused = engine.ExecuteQuery(0, paql, tight);
  // The translator's gathers need bulk pins, so a 1-byte budget must
  // surface as a structured error, never a wrong package.
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status.code(), StatusCode::kResourceExhausted);

  engine::QueryBudget roomy;
  roomy.max_pinned_bytes = 64 << 20;
  engine::QueryResponse solved = engine.ExecuteQuery(0, paql, roomy);
  ASSERT_TRUE(solved.ok()) << solved.status.ToString();
  EXPECT_GT(solved.storage_peak_pinned_bytes, 0);
}

}  // namespace
}  // namespace pb
