// Property-based tests (parameterized over seeds): cross-strategy agreement
// and engine invariants on randomized workloads + randomized queries.
//
// These are the repository's strongest correctness evidence: brute force is
// an independent oracle with different code paths from the analyzer ->
// translator -> simplex -> branch-and-bound pipeline, so agreement across
// dozens of seeds exercises the full stack.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/brute_force.h"
#include "core/evaluator.h"
#include "core/local_search.h"
#include "core/pruning.h"
#include "core/sketch_refine.h"
#include "core/translator.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"
#include "paql/parser.h"

namespace pb::core {
namespace {

/// Builds a randomized-but-satisfiable query family over the recipes table:
/// the constraint windows are sampled around the aggregates of a random
/// reference subset, so roughly half the queries are feasible by
/// construction and the rest are near-misses.
std::string RandomQuery(Rng& rng, const db::Table& recipes) {
  size_t n = recipes.num_rows();
  int64_t count = rng.UniformInt(2, 4);
  // Reference subset -> a realistic calories window.
  double ref_sum = 0;
  auto cal = *recipes.schema().IndexOf("calories");
  for (int64_t i = 0; i < count; ++i) {
    ref_sum += *recipes.at(rng.Index(n), cal).ToDouble();
  }
  double lo = ref_sum * rng.UniformReal(0.7, 1.0);
  double hi = lo + ref_sum * rng.UniformReal(0.0, 0.4);
  std::string q =
      "SELECT PACKAGE(R) FROM recipes R ";
  if (rng.Bernoulli(0.4)) q += "WHERE gluten = 'free' ";
  q += "SUCH THAT COUNT(*) = " + std::to_string(count) +
       " AND SUM(calories) BETWEEN " + std::to_string(lo) + " AND " +
       std::to_string(hi);
  if (rng.Bernoulli(0.5)) {
    q += " MAXIMIZE SUM(protein)";
  } else if (rng.Bernoulli(0.5)) {
    q += " MINIMIZE SUM(cost)";
  }
  return q;
}

class CrossStrategyProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrossStrategyProperty, IlpAgreesWithBruteForceOracle) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
  db::Catalog catalog;
  catalog.RegisterOrReplace(
      datagen::GenerateRecipes(14, static_cast<uint64_t>(seed)));
  const db::Table& recipes = **catalog.Get("recipes");

  for (int trial = 0; trial < 4; ++trial) {
    std::string text = RandomQuery(rng, recipes);
    auto aq = paql::ParseAndAnalyze(text, catalog);
    ASSERT_TRUE(aq.ok()) << aq.status().ToString() << "\n" << text;

    QueryEvaluator ev(&catalog);
    EvaluationOptions ilp;
    ilp.strategy = Strategy::kIlpSolver;
    auto r_ilp = ev.Evaluate(*aq, ilp);

    BruteForceResult bf = *BruteForceSearch(*aq);
    ASSERT_TRUE(bf.exhausted) << "oracle must be exhaustive";

    if (!bf.found) {
      EXPECT_FALSE(r_ilp.ok()) << "ILP found a package the oracle says "
                                  "cannot exist:\n"
                               << text;
      if (!r_ilp.ok()) {
        EXPECT_EQ(r_ilp.status().code(), StatusCode::kInfeasible) << text;
      }
      continue;
    }
    ASSERT_TRUE(r_ilp.ok()) << r_ilp.status().ToString() << "\n" << text;
    EXPECT_TRUE(*IsValidPackage(*aq, r_ilp->package)) << text;
    if (aq->has_objective) {
      EXPECT_NEAR(r_ilp->objective, bf.best_objective,
                  1e-6 * (1 + std::abs(bf.best_objective)))
          << text;
    }
  }
}

TEST_P(CrossStrategyProperty, LocalSearchResultsAlwaysValid) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 104729 + 7);
  db::Catalog catalog;
  catalog.RegisterOrReplace(
      datagen::GenerateRecipes(40, static_cast<uint64_t>(seed) + 1000));
  const db::Table& recipes = **catalog.Get("recipes");

  for (int trial = 0; trial < 3; ++trial) {
    std::string text = RandomQuery(rng, recipes);
    auto aq = paql::ParseAndAnalyze(text, catalog);
    ASSERT_TRUE(aq.ok()) << text;
    LocalSearchOptions opts;
    opts.seed = static_cast<uint64_t>(seed) * 31 + trial;
    opts.time_limit_s = 2.0;
    auto r = LocalSearch(*aq, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r->found) {
      EXPECT_TRUE(*IsValidPackage(*aq, r->package))
          << "local search returned an invalid package for\n"
          << text;
    }
  }
}

TEST_P(CrossStrategyProperty, PruningBoundsNeverCutValidPackages) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 65537 + 3);
  db::Catalog catalog;
  catalog.RegisterOrReplace(
      datagen::GenerateRecipes(12, static_cast<uint64_t>(seed) + 2000));
  const db::Table& recipes = **catalog.Get("recipes");

  for (int trial = 0; trial < 3; ++trial) {
    std::string text = RandomQuery(rng, recipes);
    auto aq = paql::ParseAndAnalyze(text, catalog);
    ASSERT_TRUE(aq.ok()) << text;
    auto candidates = db::FilterIndices(*aq->table, aq->query.where);
    ASSERT_TRUE(candidates.ok());
    auto bounds = DeriveCardinalityBounds(*aq, *candidates);
    ASSERT_TRUE(bounds.ok());

    // Enumerate ALL valid packages without pruning; each must fall inside
    // the derived cardinality bounds (completeness of §4.1).
    BruteForceOptions opts;
    opts.use_cardinality_pruning = false;
    opts.use_linear_bounding = false;
    opts.collect_limit = 100000;
    auto all = BruteForceSearch(*aq, opts);
    ASSERT_TRUE(all.ok());
    if (bounds->infeasible) {
      EXPECT_TRUE(all->all.empty())
          << "pruning declared infeasible but a package exists:\n"
          << text;
      continue;
    }
    for (const Package& p : all->all) {
      EXPECT_GE(p.TotalCount(), bounds->lo) << text;
      EXPECT_LE(p.TotalCount(), bounds->hi) << text;
    }
  }
}

TEST_P(CrossStrategyProperty, LpRelaxationBoundsMilpObjective) {
  const int seed = GetParam();
  db::Catalog catalog;
  catalog.RegisterOrReplace(
      datagen::GenerateRecipes(30, static_cast<uint64_t>(seed) + 3000));
  Rng rng(static_cast<uint64_t>(seed));
  const db::Table& recipes = **catalog.Get("recipes");
  std::string text = RandomQuery(rng, recipes);
  if (text.find("MAXIMIZE") == std::string::npos &&
      text.find("MINIMIZE") == std::string::npos) {
    text += " MAXIMIZE SUM(protein)";
  }
  auto aq = paql::ParseAndAnalyze(text, catalog);
  ASSERT_TRUE(aq.ok()) << text;
  auto translation = TranslateToIlp(*aq);
  ASSERT_TRUE(translation.ok());
  auto lp = solver::SolveLp(translation->model);
  auto milp = solver::SolveMilp(translation->model);
  ASSERT_TRUE(lp.ok());
  ASSERT_TRUE(milp.ok());
  if (milp->status == solver::MilpStatus::kOptimal) {
    ASSERT_EQ(lp->status, solver::LpStatus::kOptimal);
    // The relaxation bounds the integer optimum from the optimization
    // direction: above for MAXIMIZE, below for MINIMIZE.
    if (translation->model.sense() == solver::ObjectiveSense::kMaximize) {
      EXPECT_GE(lp->objective, milp->objective - 1e-6) << text;
    } else {
      EXPECT_LE(lp->objective, milp->objective + 1e-6) << text;
    }
  }
}

TEST_P(CrossStrategyProperty, SketchRefinePackagesAlwaysValid) {
  const int seed = GetParam();
  db::Catalog catalog;
  catalog.RegisterOrReplace(
      datagen::GenerateRecipes(250, static_cast<uint64_t>(seed) + 4000));
  Rng rng(static_cast<uint64_t>(seed) * 17);
  const db::Table& recipes = **catalog.Get("recipes");
  std::string text = RandomQuery(rng, recipes);
  auto aq = paql::ParseAndAnalyze(text, catalog);
  ASSERT_TRUE(aq.ok()) << text;
  SketchRefineOptions opts;
  opts.partition_size = 32;
  auto r = SketchRefine(*aq, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  if (r->found) {
    EXPECT_TRUE(*IsValidPackage(*aq, r->package)) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossStrategyProperty,
                         ::testing::Range(0, 24));

// ----- Parser round-trip property --------------------------------------------

class ParserRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParserRoundTripProperty, ToPaqlReparsesToSameText) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 1);
  // Assemble a random query from grammar fragments.
  std::vector<std::string> wheres = {
      "", "WHERE gluten = 'free'",
      "WHERE calories < 800 AND protein >= 10",
      "WHERE name LIKE 'a%' OR cuisine IN ('thai', 'greek')",
      "WHERE cost NOT BETWEEN 5 AND 10",
      "WHERE sodium IS NOT NULL"};
  std::vector<std::string> suches = {
      "",
      "SUCH THAT COUNT(*) = 3",
      "SUCH THAT SUM(calories) BETWEEN 100 AND 200",
      "SUCH THAT COUNT(*) >= 1 AND AVG(protein) <= 30",
      "SUCH THAT NOT (COUNT(*) = 0) AND MIN(rating) >= 2",
      "SUCH THAT 2 * SUM(fat) - SUM(sugar) / 4 <= 100",
      "SUCH THAT COUNT(*) = 2 OR SUM(cost) > 50"};
  std::vector<std::string> objectives = {
      "", "MAXIMIZE SUM(protein)", "MINIMIZE SUM(cost)",
      "MAXIMIZE SUM(protein) - 2 * SUM(fat)"};
  std::vector<std::string> repeats = {"", "REPEAT 2", "REPEAT 5"};
  std::string text = "SELECT PACKAGE(R) AS P FROM recipes R " +
                     repeats[rng.Index(repeats.size())] + " " +
                     wheres[rng.Index(wheres.size())] + " " +
                     suches[rng.Index(suches.size())] + " " +
                     objectives[rng.Index(objectives.size())];
  auto q = paql::Parse(text);
  ASSERT_TRUE(q.ok()) << q.status().ToString() << "\n" << text;
  auto q2 = paql::Parse(q->ToPaql());
  ASSERT_TRUE(q2.ok()) << "re-parse failed for\n" << q->ToPaql();
  EXPECT_EQ(q2->ToPaql(), q->ToPaql());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripProperty,
                         ::testing::Range(0, 32));

// ----- REPEAT-multiplicity property ------------------------------------------

class RepeatProperty : public ::testing::TestWithParam<int> {};

TEST_P(RepeatProperty, IlpAgreesWithBruteForceUnderRepeat) {
  const int k = GetParam();
  db::Catalog catalog;
  catalog.RegisterOrReplace(datagen::GenerateRecipes(8, 77));
  std::string text =
      "SELECT PACKAGE(R) FROM recipes R REPEAT " + std::to_string(k) +
      " SUCH THAT COUNT(*) = " + std::to_string(2 * k) +
      " AND SUM(calories) <= " + std::to_string(1200 * k) +
      " MAXIMIZE SUM(protein)";
  auto aq = paql::ParseAndAnalyze(text, catalog);
  ASSERT_TRUE(aq.ok()) << text;
  QueryEvaluator ev(&catalog);
  EvaluationOptions ilp;
  ilp.strategy = Strategy::kIlpSolver;
  auto r_ilp = ev.Evaluate(*aq, ilp);
  auto bf = BruteForceSearch(*aq);
  ASSERT_TRUE(bf.ok());
  ASSERT_TRUE(bf->exhausted);
  ASSERT_EQ(r_ilp.ok(), bf->found) << text;
  if (bf->found) {
    EXPECT_NEAR(r_ilp->objective, bf->best_objective, 1e-6) << text;
    for (int64_t m : r_ilp->package.multiplicity) EXPECT_LE(m, k);
  }
}

INSTANTIATE_TEST_SUITE_P(RepeatK, RepeatProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace pb::core
