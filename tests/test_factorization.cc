// BasisFactorization layer tests: the dense inverse and the sparse LU must
// be interchangeable — same solves (up to roundoff), same singularity
// verdicts, residuals that actually satisfy B x = b against the basis
// matrix assembled independently from the model — plus the CSC view's
// agreement with the authoritative row storage it is derived from.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "solver/factorization.h"
#include "solver/model.h"

namespace pb::solver {
namespace {

/// Dense model: every variable appears in every row with a nonzero random
/// coefficient, so any basis without repeated columns is nonsingular with
/// probability one.
LpModel DenseRandomModel(int n, int m, uint64_t seed) {
  Rng rng(seed);
  LpModel model;
  for (int j = 0; j < n; ++j) {
    model.AddVariable("x" + std::to_string(j), 0.0, 1.0, 1.0,
                      /*is_integer=*/false);
  }
  for (int i = 0; i < m; ++i) {
    std::vector<LinearTerm> terms;
    for (int j = 0; j < n; ++j) {
      double c = rng.UniformReal(0.5, 2.0);
      if (rng.UniformReal(0.0, 1.0) < 0.5) c = -c;
      terms.push_back({j, c});
    }
    model.AddConstraint("r" + std::to_string(i), std::move(terms), 0.0, 1.0);
  }
  return model;
}

/// Column `j` of the basis matrix, assembled from the row storage (not the
/// CSC cache) so the factorization backends are checked against an
/// independent reading of the model. Slack j >= n is -e_{j-n}.
std::vector<double> BasisColumn(const LpModel& model, int j) {
  int m = model.num_constraints();
  std::vector<double> col(m, 0.0);
  if (j < model.num_variables()) {
    for (int i = 0; i < m; ++i) {
      for (const LinearTerm& t : model.constraint(i).terms) {
        if (t.var == j) col[i] += t.coeff;
      }
    }
  } else {
    col[j - model.num_variables()] = -1.0;
  }
  return col;
}

/// B x for the basis matrix whose column i is BasisColumn(basis[i]).
std::vector<double> MultiplyBasis(const LpModel& model,
                                  const std::vector<int>& basis,
                                  const std::vector<double>& x) {
  int m = model.num_constraints();
  std::vector<double> out(m, 0.0);
  for (int i = 0; i < m; ++i) {
    std::vector<double> col = BasisColumn(model, basis[i]);
    for (int r = 0; r < m; ++r) out[r] += col[r] * x[i];
  }
  return out;
}

std::unique_ptr<BasisFactorization> Make(FactorizationKind kind,
                                         const LpModel& model) {
  return MakeFactorization(kind, model.csc(), model.num_variables(),
                           model.num_constraints(), 1e-9);
}

TEST(CscMatrixTest, MatchesRowStorage) {
  LpModel model;
  model.AddVariable("a", 0, 1, 1, false);
  model.AddVariable("b", 0, 1, 1, false);
  model.AddVariable("c", 0, 1, 1, false);
  model.AddConstraint("r0", {{0, 2.0}, {2, -1.0}}, 0, 1);
  model.AddConstraint("r1", {{1, 3.0}}, 0, 1);
  model.AddConstraint("r2", {{0, 5.0}, {1, 4.0}, {2, 7.0}}, 0, 1);

  const CscMatrix& a = model.csc();
  ASSERT_EQ(a.num_cols(), 3);
  EXPECT_EQ(a.nnz(), 6);
  // Column 0: rows 0 and 2, ascending.
  EXPECT_EQ(a.col_start[0], 0);
  EXPECT_EQ(a.col_start[1], 2);
  EXPECT_EQ(a.row[0], 0);
  EXPECT_EQ(a.value[0], 2.0);
  EXPECT_EQ(a.row[1], 2);
  EXPECT_EQ(a.value[1], 5.0);
  // Column 1: rows 1 and 2.
  EXPECT_EQ(a.col_start[2], 4);
  EXPECT_EQ(a.row[2], 1);
  EXPECT_EQ(a.value[2], 3.0);
  EXPECT_EQ(a.row[3], 2);
  EXPECT_EQ(a.value[3], 4.0);
  // Column 2: rows 0 and 2.
  EXPECT_EQ(a.col_start[3], 6);
  EXPECT_EQ(a.row[4], 0);
  EXPECT_EQ(a.value[4], -1.0);
  EXPECT_EQ(a.row[5], 2);
  EXPECT_EQ(a.value[5], 7.0);
}

TEST(CscMatrixTest, CacheInvalidatedByBuilderCalls) {
  LpModel model;
  model.AddVariable("a", 0, 1, 1, false);
  model.AddConstraint("r0", {{0, 1.0}}, 0, 1);
  EXPECT_EQ(model.csc().nnz(), 1);
  model.AddVariable("b", 0, 1, 1, false);
  model.AddConstraint("r1", {{0, 1.0}, {1, 2.0}}, 0, 1);
  const CscMatrix& a = model.csc();
  EXPECT_EQ(a.num_cols(), 2);
  EXPECT_EQ(a.nnz(), 3);
}

TEST(FactorizationTest, SolvesAgreeAcrossBackendsAndSatisfyResiduals) {
  const int n = 12, m = 6;
  LpModel model = DenseRandomModel(n, m, 99);
  // Mixed structural/slack basis, deliberately out of row order.
  std::vector<int> basis = {3, n + 1, 0, n + 4, 7, 5};

  auto dense = Make(FactorizationKind::kDense, model);
  auto sparse = Make(FactorizationKind::kSparseLu, model);
  ASSERT_TRUE(dense->Refactorize(basis));
  ASSERT_TRUE(sparse->Refactorize(basis));

  Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<double> b(m);
    for (double& v : b) v = rng.UniformReal(-5.0, 5.0);

    // Ftran: x = B^{-1} b on both backends, and B x must reproduce b.
    std::vector<double> xd = b, xs = b;
    dense->Ftran(&xd);
    sparse->Ftran(&xs);
    std::vector<double> back = MultiplyBasis(model, basis, xs);
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(xd[i], xs[i], 1e-9) << "ftran row " << i;
      EXPECT_NEAR(back[i], b[i], 1e-9) << "ftran residual row " << i;
    }

    // Btran: y = B^{-T} c, so column basis[i] must price to c[i].
    std::vector<double> yd = b, ys = b;
    dense->Btran(&yd);
    sparse->Btran(&ys);
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(yd[i], ys[i], 1e-9) << "btran row " << i;
      std::vector<double> col = BasisColumn(model, basis[i]);
      double dot = 0.0;
      for (int r = 0; r < m; ++r) dot += col[r] * ys[r];
      EXPECT_NEAR(dot, b[i], 1e-9) << "btran residual col " << i;
    }
  }

  // BtranUnit r is row r of B^{-1} == B^{-T} e_r.
  for (int r = 0; r < m; ++r) {
    std::vector<double> rho_d, rho_s, er(m, 0.0);
    er[r] = 1.0;
    dense->BtranUnit(r, &rho_d);
    sparse->BtranUnit(r, &rho_s);
    std::vector<double> ref = er;
    sparse->Btran(&ref);
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(rho_d[i], rho_s[i], 1e-9) << "row " << r << " col " << i;
      EXPECT_NEAR(rho_s[i], ref[i], 1e-12) << "row " << r << " col " << i;
    }
  }
}

TEST(FactorizationTest, ColumnReplaceUpdatesTrackAFreshFactorization) {
  const int n = 12, m = 6;
  LpModel model = DenseRandomModel(n, m, 1234);
  // Start from the all-slack basis and pivot structural columns in one at
  // a time, exactly the way the simplex drives Update().
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = n + i;

  auto dense = Make(FactorizationKind::kDense, model);
  auto sparse = Make(FactorizationKind::kSparseLu, model);
  ASSERT_TRUE(dense->Refactorize(basis));
  ASSERT_TRUE(sparse->Refactorize(basis));

  const std::vector<std::pair<int, int>> pivots = {
      {0, 2}, {3, 9}, {1, 5}, {4, 0}, {2, 11}};
  for (auto [row, enter] : pivots) {
    std::vector<double> alpha_d = BasisColumn(model, enter);
    std::vector<double> alpha_s = alpha_d;
    dense->Ftran(&alpha_d);
    sparse->Ftran(&alpha_s);
    basis[row] = enter;  // the caller updates the basis before Update()
    ASSERT_TRUE(dense->Update(row, alpha_d, basis));
    ASSERT_TRUE(sparse->Update(row, alpha_s, basis));
  }
  EXPECT_EQ(dense->stats().updates, 5);
  EXPECT_EQ(sparse->stats().updates, 5);
  EXPECT_EQ(dense->stats().refactorizations, 1);
  EXPECT_EQ(sparse->stats().refactorizations, 1);

  // A third instance factored directly from the final basis is the ground
  // truth the eta-updated representations must still match.
  auto fresh = Make(FactorizationKind::kSparseLu, model);
  ASSERT_TRUE(fresh->Refactorize(basis));
  Rng rng(5);
  std::vector<double> b(m);
  for (double& v : b) v = rng.UniformReal(-3.0, 3.0);
  std::vector<double> xd = b, xs = b, xf = b;
  dense->Ftran(&xd);
  sparse->Ftran(&xs);
  fresh->Ftran(&xf);
  std::vector<double> back = MultiplyBasis(model, basis, xs);
  for (int i = 0; i < m; ++i) {
    EXPECT_NEAR(xd[i], xf[i], 1e-8) << "dense updated vs fresh, row " << i;
    EXPECT_NEAR(xs[i], xf[i], 1e-8) << "sparse updated vs fresh, row " << i;
    EXPECT_NEAR(back[i], b[i], 1e-8) << "residual row " << i;
  }
  std::vector<double> yd = b, ys = b, yf = b;
  dense->Btran(&yd);
  sparse->Btran(&ys);
  fresh->Btran(&yf);
  for (int i = 0; i < m; ++i) {
    EXPECT_NEAR(yd[i], yf[i], 1e-8) << "dense btran row " << i;
    EXPECT_NEAR(ys[i], yf[i], 1e-8) << "sparse btran row " << i;
  }
}

TEST(FactorizationTest, SingularBasisRejectedByBothBackends) {
  const int n = 8, m = 4;
  LpModel model = DenseRandomModel(n, m, 77);
  // The same structural column basic in two rows: rank-deficient by
  // construction, whatever its values.
  std::vector<int> singular = {2, 2, n + 0, n + 1};
  auto dense = Make(FactorizationKind::kDense, model);
  auto sparse = Make(FactorizationKind::kSparseLu, model);
  EXPECT_FALSE(dense->Refactorize(singular));
  EXPECT_FALSE(sparse->Refactorize(singular));
  // A failed factorization must not poison a later good one.
  std::vector<int> ok = {2, n + 3, n + 0, n + 1};
  EXPECT_TRUE(dense->Refactorize(ok));
  EXPECT_TRUE(sparse->Refactorize(ok));
  std::vector<double> b = {1.0, -2.0, 3.0, 0.5};
  std::vector<double> xd = b, xs = b;
  dense->Ftran(&xd);
  sparse->Ftran(&xs);
  std::vector<double> back = MultiplyBasis(model, ok, xs);
  for (int i = 0; i < m; ++i) {
    EXPECT_NEAR(xd[i], xs[i], 1e-9);
    EXPECT_NEAR(back[i], b[i], 1e-9);
  }
}

TEST(FactorizationTest, NamesAndFactoryRoundTrip) {
  LpModel model = DenseRandomModel(4, 2, 1);
  auto dense = Make(FactorizationKind::kDense, model);
  auto sparse = Make(FactorizationKind::kSparseLu, model);
  EXPECT_STREQ(dense->name(), FactorizationKindToString(FactorizationKind::kDense));
  EXPECT_STREQ(sparse->name(),
               FactorizationKindToString(FactorizationKind::kSparseLu));
}

}  // namespace
}  // namespace pb::solver
