// Unit tests for cardinality-based pruning (§4.1), including the paper's
// exact example formulas l = ceil(L / MAX(attr)), u = floor(U / MIN(attr))
// and the generalizations to negative weights and infeasibility proofs.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pruning.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

namespace pb::core {
namespace {

/// A calories table with known MIN = 200, MAX = 500.
db::Table MakeTable() {
  db::Table t("meals", db::Schema({{"id", db::ValueType::kInt},
                                   {"calories", db::ValueType::kDouble},
                                   {"delta", db::ValueType::kDouble}}));
  double cal[] = {200, 250, 300, 400, 500};
  double delta[] = {-5, -2, 0, 3, 8};  // mixed-sign weights
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(t.Append({db::Value::Int(i), db::Value::Double(cal[i]),
                          db::Value::Double(delta[i])})
                    .ok());
  }
  return t;
}

class PruningTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_.RegisterOrReplace(MakeTable()); }

  CardinalityBounds Derive(const std::string& such_that) {
    auto aq = paql::ParseAndAnalyze(
        "SELECT PACKAGE(M) FROM meals M SUCH THAT " + such_that, catalog_);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    std::vector<size_t> all = {0, 1, 2, 3, 4};
    auto b = DeriveCardinalityBounds(*aq, all);
    EXPECT_TRUE(b.ok()) << b.status().ToString();
    return *b;
  }

  db::Catalog catalog_;
};

TEST_F(PruningTest, CountConstraintGivesTrivialBounds) {
  // The paper: for a <= COUNT(*) <= b the bounds are l = a, u = b.
  CardinalityBounds b = Derive("COUNT(*) BETWEEN 2 AND 4");
  EXPECT_EQ(b.lo, 2);
  EXPECT_EQ(b.hi, 4);
  EXPECT_FALSE(b.infeasible);
}

TEST_F(PruningTest, PaperSumFormula) {
  // 2000 <= SUM(calories) <= 2500 with MIN = 200, MAX = 500:
  //   l = ceil(2000/500) = 4, u = floor(2500/200) = 12 (clamped to n = 5).
  CardinalityBounds b = Derive("SUM(calories) BETWEEN 2000 AND 2500");
  EXPECT_EQ(b.lo, 4);
  EXPECT_EQ(b.hi, 5);  // 12 clamped to the 5 candidates
  EXPECT_FALSE(b.infeasible);
}

TEST_F(PruningTest, SumFormulaUnclamped) {
  // 600 <= SUM <= 800: l = ceil(600/500) = 2, u = floor(800/200) = 4.
  CardinalityBounds b = Derive("SUM(calories) BETWEEN 600 AND 800");
  EXPECT_EQ(b.lo, 2);
  EXPECT_EQ(b.hi, 4);
}

TEST_F(PruningTest, InfeasibilityProvedWhenBoundsCross) {
  // SUM >= 10000 needs ceil(10000/500) = 20 tuples, but COUNT <= 3.
  CardinalityBounds b =
      Derive("SUM(calories) >= 10000 AND COUNT(*) <= 3");
  EXPECT_TRUE(b.infeasible);
}

TEST_F(PruningTest, PositiveLowerBoundUnreachableWithNonPositiveWeights) {
  // All-zero weights cannot reach a positive sum: SUM(0 * calories)...
  // use the `delta` column trick: SUM(delta) >= 100 with max weight 8 needs
  // ceil(100/8) = 13 tuples > 5 available... that is a crossing, but with
  // only negative weights it is outright infeasible:
  db::Table neg("neg", db::Schema({{"w", db::ValueType::kDouble}}));
  ASSERT_TRUE(neg.Append({db::Value::Double(-2)}).ok());
  ASSERT_TRUE(neg.Append({db::Value::Double(-1)}).ok());
  db::Catalog c;
  c.RegisterOrReplace(std::move(neg));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(N) FROM neg N SUCH THAT SUM(w) >= 5", c);
  ASSERT_TRUE(aq.ok());
  auto b = DeriveCardinalityBounds(*aq, {0, 1});
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->infeasible);
}

TEST_F(PruningTest, NegativeWeightsGiveUpperBoundFromLo) {
  // SUM(w) >= -3 with w in {-2,-1}: at most floor(-3 / -2) = 1... careful:
  // c*wmax >= lo -> c*(-1) >= -3 -> c <= 3. So hi = min(2, 3) = 2, lo = 0.
  db::Table neg("neg", db::Schema({{"w", db::ValueType::kDouble}}));
  ASSERT_TRUE(neg.Append({db::Value::Double(-2)}).ok());
  ASSERT_TRUE(neg.Append({db::Value::Double(-1)}).ok());
  db::Catalog c;
  c.RegisterOrReplace(std::move(neg));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(N) FROM neg N SUCH THAT SUM(w) >= -3", c);
  ASSERT_TRUE(aq.ok());
  auto b = DeriveCardinalityBounds(*aq, {0, 1});
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->infeasible);
  EXPECT_EQ(b->lo, 0);
  EXPECT_EQ(b->hi, 2);  // n clamp; the -3/-1 bound would allow 3
}

TEST_F(PruningTest, MixedSignWeightsGiveNoBounds) {
  // delta spans [-5, 8]: a bounded SUM(delta) window prunes nothing.
  CardinalityBounds b = Derive("SUM(delta) BETWEEN -100 AND 100");
  EXPECT_EQ(b.lo, 0);
  EXPECT_EQ(b.hi, 5);
  EXPECT_FALSE(b.infeasible);
}

TEST_F(PruningTest, MultipleConstraintsIntersect) {
  CardinalityBounds b = Derive(
      "SUM(calories) >= 900 AND COUNT(*) <= 4 AND COUNT(*) >= 1");
  // SUM >= 900 -> l = ceil(900/500) = 2; intersect with COUNT in [1,4].
  EXPECT_EQ(b.lo, 2);
  EXPECT_EQ(b.hi, 4);
}

TEST_F(PruningTest, SearchSpaceAccounting) {
  CardinalityBounds b = Derive("COUNT(*) = 2");
  // Unpruned: 2^5 = 32 -> log2 = 5. Pruned: C(5,2) = 10.
  EXPECT_NEAR(b.log2_unpruned, 5.0, 1e-9);
  EXPECT_NEAR(b.log2_pruned, std::log2(10.0), 1e-9);
}

TEST_F(PruningTest, RepeatScalesOccurrenceBounds) {
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(M) FROM meals M REPEAT 3 "
      "SUCH THAT SUM(calories) <= 1000",
      catalog_);
  ASSERT_TRUE(aq.ok());
  auto b = DeriveCardinalityBounds(*aq, {0, 1, 2, 3, 4});
  ASSERT_TRUE(b.ok());
  // u = floor(1000/200) = 5 occurrences (out of up to 15).
  EXPECT_EQ(b->hi, 5);
  EXPECT_EQ(b->lo, 0);
}

TEST_F(PruningTest, NoLinearConstraintsNoPruning) {
  auto aq = paql::ParseAndAnalyze("SELECT PACKAGE(M) FROM meals M", catalog_);
  ASSERT_TRUE(aq.ok());
  auto b = DeriveCardinalityBounds(*aq, {0, 1, 2, 3, 4});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->lo, 0);
  EXPECT_EQ(b->hi, 5);
}

TEST_F(PruningTest, EmptyCandidateSet) {
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(M) FROM meals M SUCH THAT SUM(calories) >= 100",
      catalog_);
  ASSERT_TRUE(aq.ok());
  auto b = DeriveCardinalityBounds(*aq, {});
  ASSERT_TRUE(b.ok());
  // No candidates and a positive lower bound: infeasible.
  EXPECT_TRUE(b->infeasible);
}

TEST(AggWeightsTest, CountStarAndSumAndCountExpr) {
  db::Table t = MakeTable();
  paql::AggCall count_star{db::AggFunc::kCount, nullptr};
  auto w = ComputeAggWeights(count_star, t, {0, 2, 4});
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, (std::vector<double>{1, 1, 1}));

  paql::AggCall sum{db::AggFunc::kSum, db::Col("calories")};
  ASSERT_TRUE(sum.arg->Bind(t.schema()).ok());
  w = ComputeAggWeights(sum, t, {0, 4});
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, (std::vector<double>{200, 500}));

  paql::AggCall mn{db::AggFunc::kMin, db::Col("calories")};
  ASSERT_TRUE(mn.arg->Bind(t.schema()).ok());
  EXPECT_FALSE(ComputeAggWeights(mn, t, {0}).ok());
}

TEST(AggWeightsTest, NullsContributeZeroToSumAndCount) {
  db::Table t("t", db::Schema({{"x", db::ValueType::kDouble}}));
  ASSERT_TRUE(t.Append({db::Value::Double(5)}).ok());
  ASSERT_TRUE(t.Append({db::Value::Null()}).ok());
  paql::AggCall sum{db::AggFunc::kSum, db::Col("x")};
  ASSERT_TRUE(sum.arg->Bind(t.schema()).ok());
  auto w = ComputeAggWeights(sum, t, {0, 1});
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, (std::vector<double>{5, 0}));
  paql::AggCall cnt{db::AggFunc::kCount, db::Col("x")};
  ASSERT_TRUE(cnt.arg->Bind(t.schema()).ok());
  w = ComputeAggWeights(cnt, t, {0, 1});
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, (std::vector<double>{1, 0}));
}

TEST(AggWeightsTest, CountOnAllNullColumnZeroFills) {
  // A kNull-typed ("untyped / any") attribute that never saw a value:
  // COUNT(col) counts nothing, so the weight vector is identically zero.
  // This used to drop to the per-row Eval path; now it short-circuits.
  db::Table t("notes", db::Schema({{"id", db::ValueType::kInt},
                                   {"memo", db::ValueType::kNull}}));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.Append({db::Value::Int(i), db::Value::Null()}).ok());
  }
  ASSERT_EQ(t.column_data(1).storage_type(), db::ValueType::kNull);
  paql::AggCall cnt{db::AggFunc::kCount, db::Col("memo")};
  auto w = ComputeAggWeights(cnt, t, {0, 1, 2, 3});
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(*w, (std::vector<double>{0, 0, 0, 0}));

  // The short-circuit must still validate candidate indices.
  EXPECT_EQ(ComputeAggWeights(cnt, t, {0, 9}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(AggWeightsTest, CountOnUntypedColumnWithValuesUsesNullMask) {
  // kNull storage is the per-cell Value fallback and may hold real values
  // (GroupBy aggregate outputs do); the null bitmap is maintained for it
  // like any other layout, so COUNT(col) weights come from the mask.
  db::Table t("mixed", db::Schema({{"id", db::ValueType::kInt},
                                   {"any", db::ValueType::kNull}}));
  ASSERT_TRUE(t.Append({db::Value::Int(0), db::Value::Int(7)}).ok());
  ASSERT_TRUE(t.Append({db::Value::Int(1), db::Value::Null()}).ok());
  ASSERT_TRUE(t.Append({db::Value::Int(2), db::Value::String("x")}).ok());
  paql::AggCall cnt{db::AggFunc::kCount, db::Col("any")};
  auto w = ComputeAggWeights(cnt, t, {0, 1, 2});
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(*w, (std::vector<double>{1, 0, 1}));
}

}  // namespace
}  // namespace pb::core
