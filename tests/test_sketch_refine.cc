// Tests for the SketchRefine scalability extension: partitioning invariants
// and end-to-end sketch+refine runs compared against the Direct ILP.

#include <gtest/gtest.h>

#include <set>

#include "common/env.h"
#include "core/evaluator.h"
#include "core/sketch_refine.h"
#include "datagen/lineitem.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

namespace pb::core {
namespace {

// ----- Partitioning ----------------------------------------------------------

TEST(PartitionTest, CoversAllItemsExactlyOnce) {
  std::vector<std::vector<double>> features;
  for (int i = 0; i < 137; ++i) {
    features.push_back({static_cast<double>(i % 17),
                        static_cast<double>((i * 7) % 23)});
  }
  auto groups = PartitionCandidates(features, 10);
  std::set<size_t> seen;
  for (const auto& g : groups) {
    EXPECT_LE(g.size(), 10u);
    EXPECT_FALSE(g.empty());
    for (size_t i : g) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate item " << i;
    }
  }
  EXPECT_EQ(seen.size(), features.size());
}

TEST(PartitionTest, IdenticalFeaturesStillSplit) {
  std::vector<std::vector<double>> features(100, {1.0, 1.0});
  auto groups = PartitionCandidates(features, 8);
  for (const auto& g : groups) EXPECT_LE(g.size(), 8u);
  size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 100u);
}

TEST(PartitionTest, SingleGroupWhenSmall) {
  std::vector<std::vector<double>> features(5, {0.0});
  auto groups = PartitionCandidates(features, 10);
  EXPECT_EQ(groups.size(), 1u);
}

TEST(PartitionTest, GroupsAreSpatiallyCoherent) {
  // 1-D features: groups must be intervals (median splits preserve order
  // structure), i.e. ranges must not interleave.
  std::vector<std::vector<double>> features;
  for (int i = 0; i < 64; ++i) features.push_back({static_cast<double>(i)});
  auto groups = PartitionCandidates(features, 8);
  std::vector<std::pair<double, double>> ranges;
  for (const auto& g : groups) {
    double mn = 1e18, mx = -1e18;
    for (size_t i : g) {
      mn = std::min(mn, features[i][0]);
      mx = std::max(mx, features[i][0]);
    }
    ranges.emplace_back(mn, mx);
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].first, ranges[i - 1].second)
        << "group ranges interleave";
  }
}

// ----- SketchRefine end-to-end -----------------------------------------------

class SketchRefineTest : public ::testing::Test {
 protected:
  paql::AnalyzedQuery Analyzed(const db::Catalog& c, const std::string& t) {
    auto aq = paql::ParseAndAnalyze(t, c);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    return std::move(aq).value();
  }
};

TEST_F(SketchRefineTest, FindsValidPackageOnRecipes) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(600, 17));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(R) FROM recipes R "
                     "SUCH THAT COUNT(*) = 6 AND "
                     "SUM(calories) BETWEEN 2400 AND 3600 "
                     "MAXIMIZE SUM(protein)");
  SketchRefineOptions opts;
  opts.partition_size = 50;
  auto r = SketchRefine(aq, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->found);
  EXPECT_TRUE(*IsValidPackage(aq, r->package));
  EXPECT_GT(r->num_partitions, 1u);
  EXPECT_GT(r->refine_ilps_solved, 0);
}

TEST_F(SketchRefineTest, ObjectiveWithinReasonOfDirect) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateLineitems(800, 3));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(L) FROM lineitem L "
                     "SUCH THAT COUNT(*) = 8 AND SUM(quantity) <= 200 "
                     "MAXIMIZE SUM(revenue)");
  QueryEvaluator ev(&c);
  EvaluationOptions direct;
  direct.strategy = Strategy::kIlpSolver;
  auto d = ev.Evaluate(aq, direct);
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  SketchRefineOptions opts;
  opts.partition_size = 64;
  auto sr = SketchRefine(aq, opts);
  ASSERT_TRUE(sr.ok()) << sr.status().ToString();
  ASSERT_TRUE(sr->found);
  EXPECT_TRUE(*IsValidPackage(aq, sr->package));
  // Approximation: within 40% of the true optimum on this workload
  // (the 2016 paper reports single-digit-% gaps; our partitioning is
  // simpler, so the bar is loose but still meaningful).
  EXPECT_GE(sr->objective, 0.6 * d->objective)
      << "sketch-refine lost too much objective: " << sr->objective
      << " vs direct " << d->objective;
}

TEST_F(SketchRefineTest, RejectsNonTranslatableQueries) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(50, 1));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(R) FROM recipes R "
                     "SUCH THAT COUNT(*) = 2 OR COUNT(*) = 3");
  EXPECT_EQ(SketchRefine(aq).status().code(), StatusCode::kUnimplemented);
}

TEST_F(SketchRefineTest, RejectsExtremeConstraints) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(50, 1));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(R) FROM recipes R "
                     "SUCH THAT MAX(calories) <= 600 AND COUNT(*) = 2");
  EXPECT_EQ(SketchRefine(aq).status().code(), StatusCode::kUnimplemented);
}

TEST_F(SketchRefineTest, InfeasibleQueryReportsNotFound) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(100, 2));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(R) FROM recipes R "
                     "SUCH THAT COUNT(*) = 2 AND SUM(calories) >= 1000000");
  auto r = SketchRefine(aq);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->found);
}

TEST_F(SketchRefineTest, PartitionSizeSweepStaysValid) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(300, 23));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(R) FROM recipes R "
                     "SUCH THAT COUNT(*) = 4 AND SUM(calories) <= 2400 "
                     "MAXIMIZE SUM(rating)");
  for (size_t tau : {16, 64, 150}) {
    SketchRefineOptions opts;
    opts.partition_size = tau;
    auto r = SketchRefine(aq, opts);
    ASSERT_TRUE(r.ok()) << "tau=" << tau << ": " << r.status().ToString();
    ASSERT_TRUE(r->found) << "tau=" << tau;
    EXPECT_TRUE(*IsValidPackage(aq, r->package)) << "tau=" << tau;
  }
}

TEST_F(SketchRefineTest, ThreadCountDoesNotChangeResult) {
  // The meal-plan workload: any num_threads must produce a bit-identical
  // package and objective (parallel refine merges deterministically and the
  // repair pass depends only on deterministic sub-solutions).
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(600, 41));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(R) FROM recipes R "
                     "SUCH THAT COUNT(*) = 6 AND "
                     "SUM(calories) BETWEEN 2400 AND 3600 AND "
                     "SUM(fat) <= 180 "
                     "MAXIMIZE SUM(protein)");
  SketchRefineOptions seq;
  seq.partition_size = 50;
  seq.num_threads = 1;
  auto r1 = SketchRefine(aq, seq);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r1->found);

  // Every way of spending the thread budget must agree with the serial
  // run: pure group-level fan-out, group x node splits, pure node-level
  // tree parallelism, and whatever PB_TEST_THREADS suggests (the CI matrix
  // re-runs the suite at 1 and $(nproc)).
  struct Split {
    int num_threads;
    int node_threads;
  };
  const Split splits[] = {{4, 1},
                          {4, 2},
                          {4, 4},
                          {pb::EnvInt("PB_TEST_THREADS", 8), 2}};
  for (const Split& s : splits) {
    SketchRefineOptions par = seq;
    par.num_threads = s.num_threads;
    par.node_threads = s.node_threads;
    auto r4 = SketchRefine(aq, par);
    ASSERT_TRUE(r4.ok()) << r4.status().ToString();
    ASSERT_TRUE(r4->found);

    EXPECT_EQ(r1->package, r4->package)
        << r1->package.Fingerprint() << " vs " << r4->package.Fingerprint()
        << " (threads=" << s.num_threads
        << ", node_threads=" << s.node_threads << ")";
    EXPECT_EQ(r1->objective, r4->objective);
    EXPECT_EQ(r1->backtracks, r4->backtracks);
    EXPECT_EQ(r1->repair_passes, r4->repair_passes);
    EXPECT_EQ(r1->refine_ilps_solved, r4->refine_ilps_solved);
    EXPECT_EQ(r1->lp_iterations, r4->lp_iterations);
    EXPECT_EQ(r1->lp_dual_iterations, r4->lp_dual_iterations);
    EXPECT_TRUE(*IsValidPackage(aq, r4->package));
  }
}

TEST_F(SketchRefineTest, InvalidRepairSurfacesInternalErrorNotSilence) {
  // Force the repair invariant to break: a loose integrality tolerance
  // makes every sub-ILP report "optimal" on fractional points whose
  // integer snap aggregates differently than the solver claimed, so the
  // repair pass completes on residuals that cannot validate. That must
  // surface as an Internal error — never a silently invalid package, and
  // not a found=false after burning the backtrack budget on deterministic
  // identical retries. (This combination was verified to hit the repaired-
  // but-invalid path; the solver is deterministic, so it stays hit.)
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(200, 29));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(R) FROM recipes R "
                     "SUCH THAT COUNT(*) = 5 AND "
                     "SUM(calories) BETWEEN 2000 AND 2200 "
                     "MAXIMIZE SUM(protein)");
  SketchRefineOptions opts;
  opts.partition_size = 32;
  opts.milp.int_tol = 0.40;
  auto r = SketchRefine(aq, opts);
  ASSERT_FALSE(r.ok()) << "repair on drifted aggregates must not 'succeed'";
  EXPECT_EQ(r.status().code(), StatusCode::kInternal)
      << r.status().ToString();
}

TEST_F(SketchRefineTest, RepeatQueriesSupported) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(200, 29));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(R) FROM recipes R REPEAT 2 "
                     "SUCH THAT COUNT(*) = 6 AND SUM(calories) <= 3000 "
                     "MAXIMIZE SUM(protein)");
  auto r = SketchRefine(aq);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->found);
  EXPECT_TRUE(*IsValidPackage(aq, r->package));
}

}  // namespace
}  // namespace pb::core
