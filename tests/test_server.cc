// The pbserve transport: JSON parsing/serialization, the protocol layer's
// 1:1 StatusCode → error-envelope mapping (exercised without sockets via
// HandleRequestLine), and the live loopback server — parallel connections,
// deterministic overload rejection, and cross-connection cancellation.
//
// The parallel-connection suite honors PB_TEST_THREADS and is part of the
// TSan CI lane: N real client sockets hammer one Engine through the full
// accept/serve/dispatch path.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/json.h"
#include "engine/engine.h"
#include "server/protocol.h"
#include "server/server.h"

namespace pb::server {
namespace {

// ------------------------------------------------------------------- JSON

TEST(JsonTest, ParsesAndDumpsRoundTrip) {
  auto v = json::Parse(
      R"js({"op":"query","paql":"SELECT 1","budget":{"time_limit_s":2.5},)js"
      R"js("flags":[true,false,null],"n":-42})js");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->GetString("op"), "query");
  const json::Value* budget = v->Find("budget");
  ASSERT_NE(budget, nullptr);
  EXPECT_DOUBLE_EQ(budget->GetNumber("time_limit_s"), 2.5);
  EXPECT_EQ(v->GetInt("n"), -42);

  auto round = json::Parse(v->Dump());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->Dump(), v->Dump());
}

TEST(JsonTest, HandlesEscapesAndUnicode) {
  auto v = json::Parse(R"js({"s":"a\"b\\c\n\t\u00e9\ud83d\ude00"})js");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const std::string s = v->GetString("s");
  EXPECT_NE(s.find("a\"b\\c\n\t"), std::string::npos);
  EXPECT_NE(s.find("\xc3\xa9"), std::string::npos);          // é
  EXPECT_NE(s.find("\xf0\x9f\x98\x80"), std::string::npos);  // 😀 (pair)
  // Dump re-escapes; the reparse must agree.
  auto round = json::Parse(v->Dump());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->GetString("s"), s);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(json::Parse("[1,2,]").ok());
  EXPECT_FALSE(json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(json::Parse("\"\\uZZZZ\"").ok());
  EXPECT_EQ(json::Parse("nope").status().code(), StatusCode::kParseError);
}

TEST(JsonTest, IntegersDumpExactly) {
  json::Value v = json::Value::Object();
  v.Set("big", json::Value::Int(9007199254740992LL));
  v.Set("neg", json::Value::Int(-7));
  v.Set("frac", json::Value::Number(0.5));
  const std::string out = v.Dump();
  EXPECT_NE(out.find("9007199254740992"), std::string::npos);
  EXPECT_NE(out.find("-7"), std::string::npos);
  EXPECT_NE(out.find("0.5"), std::string::npos);
}

// --------------------------------------------------------------- protocol

std::unique_ptr<engine::Engine> MakeEngine(size_t rows = 120) {
  engine::EngineOptions options;
  options.num_threads = 2;
  auto e = std::make_unique<engine::Engine>(options);
  EXPECT_TRUE(e->GenerateDataset("recipes", rows, 42).ok());
  return e;
}

/// Dispatches one request line and parses the envelope back.
json::Value Call(engine::Engine* engine, const std::string& line,
                 ConnectionContext* ctx = nullptr) {
  auto v = json::Parse(HandleRequestLine(engine, line, ctx));
  EXPECT_TRUE(v.ok()) << "unparseable envelope for: " << line;
  return v.ok() ? std::move(*v) : json::Value::Null();
}

std::string ErrorCode(const json::Value& envelope) {
  const json::Value* error = envelope.Find("error");
  return error ? error->GetString("code") : "";
}

TEST(ProtocolTest, QueryReturnsOkEnvelopeWithCounters) {
  auto engine = MakeEngine();
  json::Value r =
      Call(engine.get(),
           R"js({"op":"query","paql":"SELECT PACKAGE(R) FROM )js"
           R"js(recipes R SUCH THAT COUNT(*) = 3 AND SUM(calories) )js"
           R"js(BETWEEN 2000 AND 2500 MAXIMIZE SUM(protein)"})js");
  EXPECT_TRUE(r.GetBool("ok"));
  const json::Value* result = r.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->GetString("table"), "recipes");
  EXPECT_EQ(result->GetString("strategy"), "IlpSolver");
  EXPECT_TRUE(result->GetBool("proven_optimal"));
  const json::Value* counters = result->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->GetInt("nodes"), 0);
  EXPECT_FALSE(counters->GetString("model_signature").empty());
  const json::Value* package = result->Find("package");
  ASSERT_NE(package, nullptr);
  EXPECT_EQ(package->GetInt("count"), 3);
}

TEST(ProtocolTest, ErrorEnvelopesMapStatusCodesOneToOne) {
  auto engine = MakeEngine(30);
  // Malformed JSON → ParseError.
  EXPECT_EQ(ErrorCode(Call(engine.get(), "{not json")), "ParseError");
  // Bad PaQL → ParseError from the query parser.
  EXPECT_EQ(ErrorCode(Call(engine.get(),
                           R"js({"op":"query","paql":"SELECT nonsense"})js")),
            "ParseError");
  // Unknown op → InvalidArgument.
  EXPECT_EQ(ErrorCode(Call(engine.get(), R"js({"op":"frobnicate"})js")),
            "InvalidArgument");
  // Missing paql → InvalidArgument.
  EXPECT_EQ(ErrorCode(Call(engine.get(), R"js({"op":"query"})js")),
            "InvalidArgument");
  // Unknown table → NotFound.
  EXPECT_EQ(
      ErrorCode(Call(
          engine.get(),
          R"js({"op":"query","paql":"SELECT PACKAGE(X) FROM nope X"})js")),
      "NotFound");
  // Unknown session → NotFound.
  EXPECT_EQ(ErrorCode(Call(engine.get(),
                           R"js({"op":"cancel","session":424242})js")),
            "NotFound");
  // Infeasible query → Infeasible.
  EXPECT_EQ(
      ErrorCode(Call(engine.get(),
                     R"js({"op":"query","paql":"SELECT PACKAGE(R) FROM )js"
                     R"js(recipes R SUCH THAT COUNT(*) = 3 AND )js"
                     R"js(SUM(calories) <= 1"})js")),
      "Infeasible");
  // Over-budget query → ResourceExhausted with the cancelled marker.
  json::Value over =
      Call(engine.get(),
           R"js({"op":"query","paql":"SELECT PACKAGE(R) FROM )js"
           R"js(recipes R SUCH THAT COUNT(*) = 4 MAXIMIZE )js"
           R"js(SUM(protein)","budget":{"time_limit_s":1e-9}})js");
  EXPECT_EQ(ErrorCode(over), "ResourceExhausted");
}

TEST(ProtocolTest, HelloTracksSessionsOnTheConnection) {
  auto engine = MakeEngine(30);
  ConnectionContext ctx;
  json::Value hello = Call(engine.get(), R"js({"op":"hello"})js", &ctx);
  EXPECT_TRUE(hello.GetBool("ok"));
  ASSERT_EQ(ctx.sessions.size(), 1u);
  const uint64_t session = ctx.sessions[0];
  EXPECT_GT(session, 0u);

  json::Value bye =
      Call(engine.get(),
           R"js({"op":"close","session":)js" + std::to_string(session) + "}",
           &ctx);
  EXPECT_TRUE(bye.GetBool("ok"));
  EXPECT_TRUE(ctx.sessions.empty());
}

TEST(ProtocolTest, TablesStatsAndGenRoundTrip) {
  auto engine = MakeEngine(30);
  json::Value gen = Call(engine.get(),
                         R"js({"op":"gen","kind":"stocks","n":40,"seed":7})js");
  EXPECT_TRUE(gen.GetBool("ok"));
  json::Value tables = Call(engine.get(), R"js({"op":"tables"})js");
  EXPECT_TRUE(tables.GetBool("ok"));
  const json::Value* list = tables.Find("result")->Find("tables");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->items().size(), 2u);
  json::Value stats = Call(engine.get(), R"js({"op":"stats"})js");
  EXPECT_TRUE(stats.GetBool("ok"));
  EXPECT_GE(stats.Find("result")->GetInt("queries"), 0);
}

// ----------------------------------------------------------------- server

/// A tiny blocking line-framed client over a real socket.
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one newline-terminated envelope ("" on EOF).
  std::string RecvLine() {
    std::string line;
    char c;
    while (true) {
      ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n <= 0) return "";
      if (c == '\n') return line;
      line.push_back(c);
    }
  }

  json::Value Roundtrip(const std::string& line) {
    if (!SendLine(line)) return json::Value::Null();
    auto v = json::Parse(RecvLine());
    return v.ok() ? std::move(*v) : json::Value::Null();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(ServerTest, ServesQueriesOverLoopback) {
  auto engine = MakeEngine();
  Server server(engine.get(), {});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  json::Value hello = client.Roundtrip(R"js({"op":"hello"})js");
  EXPECT_TRUE(hello.GetBool("ok"));
  json::Value r = client.Roundtrip(
      R"js({"op":"query","paql":"SELECT PACKAGE(R) FROM recipes R SUCH )js"
      R"js(THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 2000 AND 2500 )js"
      R"js(MAXIMIZE SUM(protein)"})js");
  ASSERT_TRUE(r.GetBool("ok")) << r.Dump();
  EXPECT_TRUE(r.Find("result")->GetBool("proven_optimal"));
  json::Value bad = client.Roundtrip("garbage");
  EXPECT_FALSE(bad.GetBool("ok"));
  EXPECT_EQ(ErrorCode(bad), "ParseError");
  server.Stop();
}

TEST(ServerTest, EightParallelConnectionsGetIdenticalAnswers) {
  auto engine = MakeEngine(150);
  Server server(engine.get(), {});
  ASSERT_TRUE(server.Start().ok());

  const int num_clients = std::max(8, EnvInt("PB_TEST_THREADS", 8));
  const int rounds = 3;
  std::vector<std::string> dumps(num_clients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      LineClient client(server.port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < rounds; ++round) {
        json::Value r = client.Roundtrip(
            R"js({"op":"query","paql":"SELECT PACKAGE(R) FROM recipes R )js"
            R"js(SUCH THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 2000 )js"
            R"js(AND 2500 MAXIMIZE SUM(protein)"})js");
        if (!r.GetBool("ok")) {
          failures.fetch_add(1);
          continue;
        }
        // Strip the per-call counters/timings; compare the answer itself.
        const json::Value* result = r.Find("result");
        json::Value answer = json::Value::Object();
        answer.Set("package", *result->Find("package"));
        answer.Set("objective",
                   json::Value::Number(result->GetNumber("objective")));
        if (dumps[c].empty()) {
          dumps[c] = answer.Dump();
        } else if (dumps[c] != answer.Dump()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every connection saw the same bit-identical package.
  std::set<std::string> distinct(dumps.begin(), dumps.end());
  EXPECT_EQ(distinct.size(), 1u);
  server.Stop();
}

TEST(ServerTest, OverloadedAdmissionQueueRejectsWithEnvelope) {
  engine::EngineOptions options;
  options.num_threads = 2;
  options.max_pending_queries = 0;  // deterministic: reject every submit
  engine::Engine engine(options);
  ASSERT_TRUE(engine.GenerateDataset("recipes", 30, 42).ok());
  Server server(&engine, {});
  ASSERT_TRUE(server.Start().ok());

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  json::Value r = client.Roundtrip(
      R"js({"op":"query","paql":"SELECT PACKAGE(R) FROM recipes R SUCH THAT )js"
      R"js(COUNT(*) = 2 MAXIMIZE SUM(protein)"})js");
  EXPECT_FALSE(r.GetBool("ok"));
  EXPECT_EQ(ErrorCode(r), "ResourceExhausted");
  EXPECT_EQ(engine.stats().overload_rejections, 1);
  server.Stop();
}

TEST(ServerTest, ConnectionCapSendsOverloadEnvelopeAndCloses) {
  auto engine = MakeEngine(30);
  ServerOptions options;
  options.max_connections = 1;
  Server server(engine.get(), options);
  ASSERT_TRUE(server.Start().ok());

  LineClient first(server.port());
  ASSERT_TRUE(first.connected());
  // Prove the first connection is established server-side before the
  // second arrives (the cap counts live connections).
  EXPECT_TRUE(first.Roundtrip(R"js({"op":"tables"})js").GetBool("ok"));

  LineClient second(server.port());
  ASSERT_TRUE(second.connected());
  auto v = json::Parse(second.RecvLine());
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->GetBool("ok"));
  EXPECT_EQ(ErrorCode(*v), "ResourceExhausted");
  EXPECT_EQ(second.RecvLine(), "");  // closed after the envelope
  server.Stop();
}

TEST(ServerTest, CancelFromASecondConnectionInterruptsTheQuery) {
  engine::EngineOptions eopts;
  eopts.num_threads = 2;
  engine::Engine engine(eopts);
  ASSERT_TRUE(engine.GenerateDataset("stocks", 4000, 3).ok());
  Server server(&engine, {});
  ASSERT_TRUE(server.Start().ok());

  LineClient worker(server.port());
  ASSERT_TRUE(worker.connected());
  json::Value hello = worker.Roundtrip(R"js({"op":"hello"})js");
  ASSERT_TRUE(hello.GetBool("ok"));
  const int64_t session = hello.Find("result")->GetInt("session");
  ASSERT_GT(session, 0);

  // Fire a long-running query on the worker connection, then cancel it
  // from a second connection via the shared session id.
  ASSERT_TRUE(worker.SendLine(
      R"js({"op":"query","session":)js" + std::to_string(session) +
      R"js(,"paql":"SELECT PACKAGE(S) FROM stocks S SUCH THAT )js"
      R"js(COUNT(*) = 12 AND SUM(price) BETWEEN 5000 AND 5010 )js"
      R"js(MAXIMIZE SUM(expected_gain)"})js"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  LineClient controller(server.port());
  ASSERT_TRUE(controller.connected());
  json::Value cancel = controller.Roundtrip(
      R"js({"op":"cancel","session":)js" + std::to_string(session) + "}");
  EXPECT_TRUE(cancel.GetBool("ok")) << cancel.Dump();

  auto envelope = json::Parse(worker.RecvLine());
  ASSERT_TRUE(envelope.ok());
  // Cancelled (expected) or — if the solve won the race — complete.
  if (envelope->GetBool("ok")) {
    const json::Value* result = envelope->Find("result");
    ASSERT_NE(result, nullptr);
    if (result->GetBool("cancelled")) {
      EXPECT_FALSE(result->GetBool("proven_optimal"));
    }
  } else {
    EXPECT_EQ(ErrorCode(*envelope), "ResourceExhausted");
  }
  server.Stop();
}

}  // namespace
}  // namespace pb::server
