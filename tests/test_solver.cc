// Unit tests for the LP/MILP solver substrate: model building, the
// bounded-variable simplex, and branch-and-bound. Includes randomized
// cross-checks against exhaustive enumeration (the solver is the engine's
// trust anchor, so it gets the most adversarial testing).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "solver/milp.h"
#include "solver/model.h"
#include "solver/simplex.h"

namespace pb::solver {
namespace {

// ----- Model -----------------------------------------------------------------

TEST(ModelTest, BuilderBasics) {
  LpModel m;
  int x = m.AddVariable("x", 0, 10, 1.0, false);
  int y = m.AddVariable("y", 0, 10, 2.0, true);
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 1);
  int c = m.AddConstraint("c", {{x, 1.0}, {y, 1.0}}, 0, 5);
  EXPECT_EQ(c, 0);
  EXPECT_TRUE(m.has_integer_variables());
  EXPECT_TRUE(m.Validate().ok());
}

TEST(ModelTest, DuplicateTermsMerge) {
  LpModel m;
  int x = m.AddVariable("x", 0, 1, 0, false);
  m.AddConstraint("c", {{x, 1.0}, {x, 2.0}, {x, -3.0}}, 0, 1);
  // 1 + 2 - 3 = 0: the term vanishes.
  EXPECT_TRUE(m.constraint(0).terms.empty());
}

TEST(ModelTest, ValidationCatchesBadBounds) {
  LpModel m;
  m.AddVariable("x", 5, 2, 0, false);
  EXPECT_EQ(m.Validate().code(), StatusCode::kInfeasible);
  LpModel m2;
  EXPECT_EQ(m2.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ModelTest, FeasibilityCheck) {
  LpModel m;
  int x = m.AddVariable("x", 0, 10, 0, false);
  m.AddConstraint("c", {{x, 2.0}}, 4, 8);
  EXPECT_TRUE(m.IsFeasible({3.0}));
  EXPECT_FALSE(m.IsFeasible({1.0}));   // row below lo
  EXPECT_FALSE(m.IsFeasible({11.0}));  // bound violated
}

TEST(ModelTest, LpFormatMentionsEverything) {
  LpModel m;
  int x = m.AddVariable("x", 0, 3, 1.5, true);
  m.AddConstraint("cap", {{x, 1.0}}, -kInfinity, 2);
  m.SetSense(ObjectiveSense::kMaximize);
  std::string lp = m.ToLpFormat();
  EXPECT_NE(lp.find("Maximize"), std::string::npos);
  EXPECT_NE(lp.find("cap"), std::string::npos);
  EXPECT_NE(lp.find("General"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
}

// ----- Simplex ---------------------------------------------------------------

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6) obj 36.
  LpModel m;
  int x = m.AddVariable("x", 0, kInfinity, 3, false);
  int y = m.AddVariable("y", 0, kInfinity, 5, false);
  m.AddConstraint("c1", {{x, 1.0}}, -kInfinity, 4);
  m.AddConstraint("c2", {{y, 2.0}}, -kInfinity, 12);
  m.AddConstraint("c3", {{x, 3.0}, {y, 2.0}}, -kInfinity, 18);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 36.0, 1e-7);
  EXPECT_NEAR(r->x[0], 2.0, 1e-7);
  EXPECT_NEAR(r->x[1], 6.0, 1e-7);
}

TEST(SimplexTest, MinimizationWithEquality) {
  // min x + y s.t. x + y = 10, x - y >= 2 -> (6, 4)? obj always 10.
  LpModel m;
  int x = m.AddVariable("x", 0, kInfinity, 1, false);
  int y = m.AddVariable("y", 0, kInfinity, 1, false);
  m.AddConstraint("sum", {{x, 1.0}, {y, 1.0}}, 10, 10);
  m.AddConstraint("gap", {{x, 1.0}, {y, -1.0}}, 2, kInfinity);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 10.0, 1e-7);
  EXPECT_NEAR(r->x[0] + r->x[1], 10.0, 1e-7);
  EXPECT_GE(r->x[0] - r->x[1], 2.0 - 1e-7);
}

TEST(SimplexTest, DetectsInfeasibility) {
  LpModel m;
  int x = m.AddVariable("x", 0, 1, 0, false);
  m.AddConstraint("impossible", {{x, 1.0}}, 5, 10);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  LpModel m;
  m.AddVariable("x", 0, kInfinity, 1, false);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, LpStatus::kUnbounded);
}

TEST(SimplexTest, RespectsVariableBounds) {
  // max x + y with x in [1, 2], y in [-3, -1]; optimum at upper bounds.
  LpModel m;
  int x = m.AddVariable("x", 1, 2, 1, false);
  int y = m.AddVariable("y", -3, -1, 1, false);
  m.AddConstraint("noop", {{x, 1.0}, {y, 1.0}}, -kInfinity, kInfinity);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  EXPECT_NEAR(r->x[0], 2.0, 1e-7);
  EXPECT_NEAR(r->x[1], -1.0, 1e-7);
}

TEST(SimplexTest, FreeVariables) {
  // min x + 2y, x free, y free, x + y >= 3, x - y <= 1.
  // Optimum pushes y down... x + y >= 3 with min coeffs positive:
  // minimize on the boundary x+y=3; substitute x = 3 - y:
  // obj = 3 + y -> minimize y; constraint x - y <= 1 -> 3 - 2y <= 1 -> y >= 1.
  // So y = 1, x = 2, obj = 4.
  LpModel m;
  int x = m.AddVariable("x", -kInfinity, kInfinity, 1, false);
  int y = m.AddVariable("y", -kInfinity, kInfinity, 2, false);
  m.AddConstraint("c1", {{x, 1.0}, {y, 1.0}}, 3, kInfinity);
  m.AddConstraint("c2", {{x, 1.0}, {y, -1.0}}, -kInfinity, 1);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 4.0, 1e-6);
  EXPECT_NEAR(r->x[0], 2.0, 1e-6);
  EXPECT_NEAR(r->x[1], 1.0, 1e-6);
}

TEST(SimplexTest, NegativeBoundsRangedRows) {
  // min -x with -5 <= x <= -2 and -4 <= x <= 0 (row): optimum x = -2.
  LpModel m;
  int x = m.AddVariable("x", -5, -2, -1, false);
  m.AddConstraint("row", {{x, 1.0}}, -4, 0);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  EXPECT_NEAR(r->x[0], -2.0, 1e-7);
}

TEST(SimplexTest, NoConstraintsJustBounds) {
  LpModel m;
  m.AddVariable("x", -1, 7, 1, false);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  EXPECT_NEAR(r->x[0], 7.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex (classic cycling
  // bait); Bland's fallback must terminate.
  LpModel m;
  int x = m.AddVariable("x", 0, kInfinity, 1, false);
  int y = m.AddVariable("y", 0, kInfinity, 1, false);
  for (int i = 0; i < 10; ++i) {
    m.AddConstraint("r" + std::to_string(i),
                    {{x, 1.0 + i * 0.0}, {y, 1.0}}, -kInfinity, 10);
  }
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 10.0, 1e-7);
}

/// Exhaustively evaluates a small LP over a grid to approximate the optimum
/// (used as an oracle for randomized tests; integer-grid LPs only).
double GridOracle(const LpModel& m, int grid_hi) {
  const bool maximize = m.sense() == ObjectiveSense::kMaximize;
  double best = maximize ? -kInfinity : kInfinity;
  int n = m.num_variables();
  std::vector<double> x(n, 0.0);
  std::function<void(int)> rec = [&](int j) {
    if (j == n) {
      if (!m.IsFeasible(x, 1e-9)) return;
      double obj = m.ObjectiveValue(x);
      best = maximize ? std::max(best, obj) : std::min(best, obj);
      return;
    }
    for (int v = 0; v <= grid_hi; ++v) {
      x[j] = v;
      rec(j + 1);
    }
  };
  rec(0);
  return best;
}

TEST(SimplexTest, RandomizedLpsBeatOrMatchIntegerGrid) {
  // The LP optimum must always be at least as good as the best integer
  // grid point (sanity bound; catches gross sign/pricing bugs).
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    LpModel m;
    int n = static_cast<int>(rng.UniformInt(1, 4));
    for (int j = 0; j < n; ++j) {
      m.AddVariable("x" + std::to_string(j), 0, 3,
                    static_cast<double>(rng.UniformInt(-5, 5)), false);
    }
    int rows = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < rows; ++i) {
      std::vector<LinearTerm> terms;
      for (int j = 0; j < n; ++j) {
        terms.push_back({j, static_cast<double>(rng.UniformInt(-3, 3))});
      }
      double hi = static_cast<double>(rng.UniformInt(0, 12));
      m.AddConstraint("r" + std::to_string(i), terms, -kInfinity, hi);
    }
    m.SetSense(ObjectiveSense::kMaximize);
    auto r = SolveLp(m);
    ASSERT_TRUE(r.ok());
    double grid = GridOracle(m, 3);
    if (r->status == LpStatus::kOptimal) {
      EXPECT_GE(r->objective, grid - 1e-6)
          << "trial " << trial << ": LP worse than an integer point";
      // The LP point itself must be feasible.
      EXPECT_TRUE(m.IsFeasible(r->x, 1e-5));
    } else {
      // x = 0 is feasible for all-<= rows with hi >= 0, so optimal is the
      // only acceptable status here.
      ADD_FAILURE() << "trial " << trial << " status "
                    << LpStatusToString(r->status);
    }
  }
}

// ----- MILP ------------------------------------------------------------------

TEST(MilpTest, KnapsackSmall) {
  // Classic 0/1 knapsack: values {60,100,120}, weights {10,20,30}, cap 50.
  // Optimum: items 2+3 = 220.
  LpModel m;
  double values[] = {60, 100, 120};
  double weights[] = {10, 20, 30};
  std::vector<LinearTerm> cap;
  for (int j = 0; j < 3; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1, values[j], true);
    cap.push_back({j, weights[j]});
  }
  m.AddConstraint("cap", cap, -kInfinity, 50);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, MilpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 220.0, 1e-6);
  EXPECT_NEAR(r->x[0], 0.0, 1e-6);
  EXPECT_NEAR(r->x[1], 1.0, 1e-6);
  EXPECT_NEAR(r->x[2], 1.0, 1e-6);
}

TEST(MilpTest, IntegralityMatters) {
  // max x + y s.t. 2x + 2y <= 3, x,y integer in [0,1]: LP gives 1.5,
  // MILP must give 1.
  LpModel m;
  int x = m.AddVariable("x", 0, 1, 1, true);
  int y = m.AddVariable("y", 0, 1, 1, true);
  m.AddConstraint("c", {{x, 2.0}, {y, 2.0}}, -kInfinity, 3);
  m.SetSense(ObjectiveSense::kMaximize);
  auto lp = SolveLp(m);
  ASSERT_TRUE(lp.ok());
  EXPECT_NEAR(lp->objective, 1.5, 1e-7);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, MilpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 1.0, 1e-9);
}

TEST(MilpTest, InfeasibleInteger) {
  // 0.4 <= x <= 0.6 with x integer: no integer point.
  LpModel m;
  int x = m.AddVariable("x", 0, 1, 1, true);
  m.AddConstraint("c", {{x, 1.0}}, 0.4, 0.6);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, MilpStatus::kInfeasible);
}

TEST(MilpTest, UnboundedDetection) {
  LpModel m;
  m.AddVariable("x", 0, kInfinity, 1, true);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, MilpStatus::kUnbounded);
}

TEST(MilpTest, PureLpPassthrough) {
  LpModel m;
  m.AddVariable("x", 0, 2.5, 1, false);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, MilpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 2.5, 1e-9);
}

TEST(MilpTest, GeneralIntegerVariables) {
  // max 7x + 2y s.t. 3x + y <= 10, x in [0,3] int, y in [0,5] int.
  // x=3 -> y <= 1 -> obj 23. x=2 -> y<=4 -> 22. Optimum 23.
  LpModel m;
  int x = m.AddVariable("x", 0, 3, 7, true);
  int y = m.AddVariable("y", 0, 5, 2, true);
  m.AddConstraint("c", {{x, 3.0}, {y, 1.0}}, -kInfinity, 10);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, MilpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 23.0, 1e-6);
}

TEST(MilpTest, EqualityConstrainedCount) {
  // Exactly 3 of 6 binary variables, maximize a weighted sum.
  LpModel m;
  double w[] = {5, 1, 4, 2, 6, 3};
  std::vector<LinearTerm> count;
  for (int j = 0; j < 6; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1, w[j], true);
    count.push_back({j, 1.0});
  }
  m.AddConstraint("count", count, 3, 3);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, MilpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 15.0, 1e-6);  // 6 + 5 + 4
}

TEST(MilpTest, SolveOrFailMapsStatuses) {
  LpModel inf;
  int x = inf.AddVariable("x", 0, 1, 1, true);
  inf.AddConstraint("c", {{x, 1.0}}, 0.4, 0.6);
  EXPECT_EQ(SolveMilpOrFail(inf).status().code(), StatusCode::kInfeasible);

  LpModel unb;
  unb.AddVariable("x", 0, kInfinity, 1, true);
  unb.SetSense(ObjectiveSense::kMaximize);
  EXPECT_EQ(SolveMilpOrFail(unb).status().code(), StatusCode::kUnbounded);
}

/// Exhaustive integer oracle for randomized MILP cross-checks.
double IntegerOracle(const LpModel& m, int hi, bool* feasible) {
  const bool maximize = m.sense() == ObjectiveSense::kMaximize;
  double best = maximize ? -kInfinity : kInfinity;
  *feasible = false;
  int n = m.num_variables();
  std::vector<double> x(n, 0.0);
  std::function<void(int)> rec = [&](int j) {
    if (j == n) {
      if (!m.IsFeasible(x, 1e-9)) return;
      *feasible = true;
      double obj = m.ObjectiveValue(x);
      best = maximize ? std::max(best, obj) : std::min(best, obj);
      return;
    }
    for (int v = 0; v <= hi; ++v) {
      x[j] = v;
      rec(j + 1);
    }
  };
  rec(0);
  return best;
}

TEST(MilpTest, RandomizedAgainstExhaustiveOracle) {
  Rng rng(4242);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    LpModel m;
    int n = static_cast<int>(rng.UniformInt(2, 5));
    int hi = static_cast<int>(rng.UniformInt(1, 2));
    for (int j = 0; j < n; ++j) {
      m.AddVariable("x" + std::to_string(j), 0, hi,
                    static_cast<double>(rng.UniformInt(-4, 6)), true);
    }
    int rows = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < rows; ++i) {
      std::vector<LinearTerm> terms;
      for (int j = 0; j < n; ++j) {
        terms.push_back({j, static_cast<double>(rng.UniformInt(-3, 4))});
      }
      double lo = static_cast<double>(rng.UniformInt(-6, 2));
      double hi_b = lo + static_cast<double>(rng.UniformInt(0, 10));
      m.AddConstraint("r" + std::to_string(i), terms, lo, hi_b);
    }
    m.SetSense(rng.Bernoulli(0.5) ? ObjectiveSense::kMaximize
                                  : ObjectiveSense::kMinimize);
    bool oracle_feasible = false;
    double oracle = IntegerOracle(m, hi, &oracle_feasible);
    auto r = SolveMilp(m);
    ASSERT_TRUE(r.ok()) << "trial " << trial;
    if (oracle_feasible) {
      ASSERT_EQ(r->status, MilpStatus::kOptimal)
          << "trial " << trial << ": oracle feasible but solver said "
          << MilpStatusToString(r->status);
      EXPECT_NEAR(r->objective, oracle, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.IsFeasible(r->x, 1e-6)) << "trial " << trial;
      ++checked;
    } else {
      EXPECT_EQ(r->status, MilpStatus::kInfeasible) << "trial " << trial;
    }
  }
  // The generator must produce a healthy mix of feasible cases.
  EXPECT_GE(checked, 20);
}

// ----- Branching -------------------------------------------------------------

TEST(BranchingTest, MostFractionalPicksClosestToHalf) {
  LpModel m;
  for (int j = 0; j < 4; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 10, 1.0, true);
  }
  // Fractional parts: 0.3, 0.5, 0.9, 0.0 — index 1 is closest to 1/2.
  EXPECT_EQ(MostFractionalVariable(m, {2.3, 5.5, 0.9, 4.0}, 1e-6), 1);
  // 0.45 (dist 0.05) beats 0.7 (dist 0.2).
  EXPECT_EQ(MostFractionalVariable(m, {1.45, 3.0, 2.7, 0.0}, 1e-6), 0);
  // Ties break to the lowest index.
  EXPECT_EQ(MostFractionalVariable(m, {0.0, 1.25, 2.75, 3.0}, 1e-6), 1);
}

TEST(BranchingTest, MostFractionalHonorsToleranceAndContinuousVars) {
  LpModel m;
  m.AddVariable("i0", 0, 10, 1.0, true);
  m.AddVariable("c1", 0, 10, 1.0, false);  // continuous: never branched
  m.AddVariable("i2", 0, 10, 1.0, true);
  // i0 is within tolerance of 2; c1 is very fractional but continuous.
  EXPECT_EQ(MostFractionalVariable(m, {2.0000001, 5.5, 7.2}, 1e-6), 2);
  // Everything integral (within tolerance): -1.
  EXPECT_EQ(MostFractionalVariable(m, {2.0, 5.5, 7.0}, 1e-6), -1);
  // A barely-fractional variable is still found when it is all there is.
  EXPECT_EQ(MostFractionalVariable(m, {2.001, 5.5, 7.0}, 1e-6), 0);
}

// ----- Status edges under tight budgets --------------------------------------

/// A feasible knapsack-style ILP that needs real branching.
LpModel BranchyModel(int n, uint64_t seed) {
  Rng rng(seed);
  LpModel m;
  std::vector<LinearTerm> cap;
  for (int j = 0; j < n; ++j) {
    double w = rng.UniformReal(1.0, 30.0);
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  w * rng.UniformReal(0.8, 1.2), true);
    cap.push_back({j, w});
  }
  m.AddConstraint("cap", cap, -kInfinity, 7.0 * n);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

TEST(MilpStatusTest, NoSolutionUnderZeroNodeBudgetNotInfeasible) {
  // A perfectly feasible model starved of nodes must report kNoSolution
  // (stopped at a limit), never kInfeasible (a proof that none exists).
  LpModel m = BranchyModel(30, 7);
  MilpOptions opts;
  opts.max_nodes = 0;
  auto r = SolveMilp(m, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, MilpStatus::kNoSolution);

  MilpOptions time_opts;
  time_opts.time_limit_s = 0.0;
  auto rt = SolveMilp(m, time_opts);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt->status, MilpStatus::kNoSolution);
}

TEST(MilpStatusTest, InfeasibleIsProvenOnlyWhenTheTreeIsExhausted) {
  // LP-infeasible at the root: one node is a proof.
  LpModel lp_inf;
  int x = lp_inf.AddVariable("x", 0, 1, 1, true);
  lp_inf.AddConstraint("c", {{x, 1.0}}, 5, 10);
  MilpOptions one_node;
  one_node.max_nodes = 1;
  auto r1 = SolveMilp(lp_inf, one_node);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->status, MilpStatus::kInfeasible);

  // Integer-infeasible but LP-feasible: node presolve proves both of the
  // root's children infeasible by bound propagation alone (y <= 0 and
  // y >= 1 both violate 0.4 <= y <= 0.6), so even a one-node budget
  // exhausts the tree and honestly reports kInfeasible.
  LpModel int_inf;
  int y = int_inf.AddVariable("y", 0, 1, 1, true);
  int_inf.AddConstraint("c", {{y, 1.0}}, 0.4, 0.6);
  auto r2 = SolveMilp(int_inf, one_node);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->status, MilpStatus::kInfeasible);
  EXPECT_EQ(r2->presolve_infeasible_children, 2);

  // Without presolve the root branches into two open children, so the
  // one-node budget stops with work remaining and must say kNoSolution
  // (the pre-presolve behavior, kept exact under the ablation knob)...
  MilpOptions one_node_no_presolve = one_node;
  one_node_no_presolve.node_presolve = false;
  auto r3 = SolveMilp(int_inf, one_node_no_presolve);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->status, MilpStatus::kNoSolution);

  // ...while a budget that lets both children solve proves kInfeasible.
  MilpOptions no_presolve;
  no_presolve.node_presolve = false;
  auto r4 = SolveMilp(int_inf, no_presolve);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4->status, MilpStatus::kInfeasible);
}

TEST(MilpStatusTest, UnboundedSurfacesFromRequeuedNonRootSolve) {
  // max x + 10y with y capped by a row and x truly unbounded. With a
  // one-iteration LP budget the root solve spends its budget pivoting y,
  // hits kIterationLimit, and is re-queued; unboundedness is then
  // discovered by the resumed (non-first) solve and must still surface.
  LpModel m;
  int x = m.AddVariable("x", 0, kInfinity, 1, false);
  int y = m.AddVariable("y", 0, kInfinity, 10, true);
  (void)x;
  m.AddConstraint("ycap", {{y, 1.0}}, -kInfinity, 5);
  m.SetSense(ObjectiveSense::kMaximize);
  MilpOptions opts;
  opts.lp.max_iterations = 1;
  auto r = SolveMilp(m, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, MilpStatus::kUnbounded);
  EXPECT_GT(r->nodes, 1) << "the root must actually have been re-queued";
}

TEST(MilpStatusTest, BestBoundBracketsOracleUnderNodeLimits) {
  // best_bound must always be a valid optimistic bound on the true
  // optimum, at any node budget; at full budget it must close the gap.
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel m;
    int n = static_cast<int>(rng.UniformInt(3, 6));
    for (int j = 0; j < n; ++j) {
      m.AddVariable("x" + std::to_string(j), 0, 2,
                    static_cast<double>(rng.UniformInt(-4, 6)), true);
    }
    std::vector<LinearTerm> terms;
    for (int j = 0; j < n; ++j) {
      terms.push_back({j, static_cast<double>(rng.UniformInt(1, 4))});
    }
    m.AddConstraint("cap", terms, -kInfinity,
                    static_cast<double>(rng.UniformInt(3, 9)));
    m.SetSense(ObjectiveSense::kMaximize);
    bool feasible = false;
    double oracle = IntegerOracle(m, 2, &feasible);
    ASSERT_TRUE(feasible);  // x = 0 is always feasible here

    for (int64_t budget : {1, 3, 1000000}) {
      MilpOptions opts;
      opts.max_nodes = budget;
      auto r = SolveMilp(m, opts);
      ASSERT_TRUE(r.ok()) << "trial " << trial << " budget " << budget;
      if (r->has_solution()) {
        EXPECT_GE(r->best_bound, oracle - 1e-6)
            << "trial " << trial << " budget " << budget;
        EXPECT_GE(r->best_bound, r->objective - 1e-9)
            << "trial " << trial << " budget " << budget;
        EXPECT_LE(r->objective, oracle + 1e-6)
            << "trial " << trial << " budget " << budget;
      }
      if (budget == 1000000) {
        ASSERT_EQ(r->status, MilpStatus::kOptimal) << "trial " << trial;
        EXPECT_NEAR(r->objective, oracle, 1e-6) << "trial " << trial;
        EXPECT_NEAR(r->best_bound, oracle, 1e-6) << "trial " << trial;
      }
    }
  }
}

// ----- End-of-solve classification at the iteration-limit boundary -----------

/// An LP whose slack basis is infeasible (equality COUNT row), so the
/// solve does real work in both phases — the boundary cases below need a
/// known multi-iteration trajectory.
LpModel TwoPhaseModel() {
  Rng rng(31);
  LpModel m;
  std::vector<LinearTerm> count, weight;
  for (int j = 0; j < 40; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), false);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 2000, 2600);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

TEST(SimplexStatusBoundaryTest, OptimalProvenExactlyAtLimitIsOptimal) {
  // Pre-fix behavior: a solve whose last allowed pivot reached the optimum
  // was mislabeled kIterationLimit because the limit check ran before the
  // final pricing pass. Optimality proven at the boundary must win.
  LpModel m = TwoPhaseModel();
  auto ref = SolveLp(m);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->status, LpStatus::kOptimal);
  ASSERT_GT(ref->iterations, 2) << "the model must need real work";

  SimplexOptions exact;
  exact.max_iterations = ref->iterations;
  auto r = SolveLp(m, exact);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, LpStatus::kOptimal)
      << "optimal at exactly max_iterations must classify as optimal";
  EXPECT_EQ(r->iterations, ref->iterations);
  EXPECT_NEAR(r->objective, ref->objective, 1e-9);
  EXPECT_FALSE(r->basis.empty());
}

TEST(SimplexStatusBoundaryTest, LimitMidPhase1ReportsLimitWithBasis) {
  // One iteration is not enough to repair the infeasible slack basis:
  // the solve must report the limit (not a fake infeasible) and export a
  // resumable basis that reaches the true optimum.
  LpModel m = TwoPhaseModel();
  auto ref = SolveLp(m);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->status, LpStatus::kOptimal);

  SimplexOptions one;
  one.max_iterations = 1;
  auto limited = SolveLp(m, one);
  ASSERT_TRUE(limited.ok());
  ASSERT_EQ(limited->status, LpStatus::kIterationLimit);
  ASSERT_FALSE(limited->basis.empty());

  auto resumed = SolveLp(m, {}, nullptr, &limited->basis);
  ASSERT_TRUE(resumed.ok());
  ASSERT_EQ(resumed->status, LpStatus::kOptimal);
  EXPECT_NEAR(resumed->objective, ref->objective, 1e-7);
}

TEST(SimplexStatusBoundaryTest, LimitMidPhase2ReportsLimitWithBasis) {
  // One iteration short of the full trajectory: an improving direction
  // still exists at the boundary, so the limit must be reported — and the
  // exported basis must finish in a bounded number of extra pivots.
  LpModel m = TwoPhaseModel();
  auto ref = SolveLp(m);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->status, LpStatus::kOptimal);

  SimplexOptions short_one;
  short_one.max_iterations = ref->iterations - 1;
  auto limited = SolveLp(m, short_one);
  ASSERT_TRUE(limited.ok());
  ASSERT_EQ(limited->status, LpStatus::kIterationLimit);
  EXPECT_EQ(limited->iterations, ref->iterations - 1);
  ASSERT_FALSE(limited->basis.empty());

  auto resumed = SolveLp(m, {}, nullptr, &limited->basis);
  ASSERT_TRUE(resumed.ok());
  ASSERT_EQ(resumed->status, LpStatus::kOptimal);
  EXPECT_NEAR(resumed->objective, ref->objective, 1e-7);
}

TEST(MilpTest, NodeLimitReportsHonestly) {
  // A model that needs branching, starved of nodes.
  LpModel m;
  std::vector<LinearTerm> terms;
  Rng rng(5);
  for (int j = 0; j < 30; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  1.0 + 0.01 * static_cast<double>(j % 7), true);
    terms.push_back({j, 1.0 + 0.37 * static_cast<double>(j % 5)});
  }
  m.AddConstraint("cap", terms, -kInfinity, 17.3);
  m.SetSense(ObjectiveSense::kMaximize);
  MilpOptions opts;
  opts.max_nodes = 1;
  auto r = SolveMilp(m, opts);
  ASSERT_TRUE(r.ok());
  // One node is rarely enough to prove optimality here; accept any honest
  // limited status (feasible-with-incumbent or no-solution).
  EXPECT_TRUE(r->status == MilpStatus::kFeasible ||
              r->status == MilpStatus::kNoSolution ||
              r->status == MilpStatus::kOptimal);
  if (r->status == MilpStatus::kFeasible) {
    EXPECT_TRUE(m.IsFeasible(r->x, 1e-6));
  }
}

}  // namespace
}  // namespace pb::solver
