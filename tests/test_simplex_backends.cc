// Cross-backend solver tests: every combination of factorization backend
// (dense inverse vs sparse LU) and pricing rule (Dantzig vs devex) must
// agree on the answer — LP vertex, MILP package, SketchRefine result — and
// bases snapshotted under one backend must warm-start the other. The
// engine ablation knobs change the path and the counters, never the
// result.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/sketch_refine.h"
#include "datagen/lineitem.h"
#include "db/catalog.h"
#include "paql/analyzer.h"
#include "solver/milp.h"
#include "solver/simplex.h"

namespace pb::solver {
namespace {

constexpr FactorizationKind kBackends[] = {FactorizationKind::kDense,
                                           FactorizationKind::kSparseLu};
constexpr PricingRule kRules[] = {PricingRule::kDantzig, PricingRule::kDevex};

/// Package-shaped model with continuous random coefficients: the optimum is
/// unique with probability one, so backends must land on the same vertex
/// (LP) and the same package (MILP), not just the same objective.
LpModel PackageModel(int n, uint64_t seed, bool integer) {
  Rng rng(seed);
  LpModel m;
  std::vector<LinearTerm> count, weight, cost;
  for (int j = 0; j < n; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), integer);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
    cost.push_back({j, rng.UniformReal(1.0, 50.0)});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 2000, 2600);
  m.AddConstraint("cost", cost, -kInfinity, 120);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

std::vector<int64_t> Rounded(const std::vector<double>& x) {
  std::vector<int64_t> r(x.size());
  for (size_t j = 0; j < x.size(); ++j) r[j] = std::llround(x[j]);
  return r;
}

TEST(SimplexBackendsTest, AllEngineCombinationsFindTheSameVertex) {
  for (uint64_t seed : {2u, 19u, 55u}) {
    LpModel m = PackageModel(120, seed, /*integer=*/false);
    LpSolution reference;
    bool have_reference = false;
    for (FactorizationKind fact : kBackends) {
      for (PricingRule rule : kRules) {
        SimplexOptions opts;
        opts.factorization = fact;
        opts.pricing = rule;
        auto r = SolveLp(m, opts);
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r->status, LpStatus::kOptimal)
            << FactorizationKindToString(fact) << "/"
            << PricingRuleToString(rule) << " seed " << seed;
        EXPECT_GT(r->refactorizations, 0);
        if (!have_reference) {
          reference = std::move(r).value();
          have_reference = true;
          continue;
        }
        EXPECT_NEAR(r->objective, reference.objective, 1e-7)
            << FactorizationKindToString(fact) << "/"
            << PricingRuleToString(rule) << " seed " << seed;
        ASSERT_EQ(r->x.size(), reference.x.size());
        for (size_t j = 0; j < r->x.size(); ++j) {
          EXPECT_NEAR(r->x[j], reference.x[j], 1e-7)
              << FactorizationKindToString(fact) << "/"
              << PricingRuleToString(rule) << " seed " << seed << " x[" << j
              << "]";
        }
      }
    }
  }
}

TEST(SimplexBackendsTest, BasesRoundTripAcrossBackends) {
  LpModel m = PackageModel(150, 31, /*integer=*/false);
  SimplexOptions dense_opts, sparse_opts;
  dense_opts.factorization = FactorizationKind::kDense;
  sparse_opts.factorization = FactorizationKind::kSparseLu;

  auto dense = SolveLp(m, dense_opts);
  auto sparse = SolveLp(m, sparse_opts);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  ASSERT_EQ(dense->status, LpStatus::kOptimal);
  ASSERT_EQ(sparse->status, LpStatus::kOptimal);

  // An optimal basis snapshotted under one backend must price out
  // immediately under the other: LpBasis is backend-agnostic.
  auto warm_sparse = SolveLp(m, sparse_opts, nullptr, &dense->basis);
  auto warm_dense = SolveLp(m, dense_opts, nullptr, &sparse->basis);
  ASSERT_TRUE(warm_sparse.ok());
  ASSERT_TRUE(warm_dense.ok());
  ASSERT_EQ(warm_sparse->status, LpStatus::kOptimal);
  ASSERT_EQ(warm_dense->status, LpStatus::kOptimal);
  EXPECT_EQ(warm_sparse->iterations, 0);
  EXPECT_EQ(warm_dense->iterations, 0);
  EXPECT_NEAR(warm_sparse->objective, dense->objective, 1e-9);
  EXPECT_NEAR(warm_dense->objective, sparse->objective, 1e-9);
}

TEST(SimplexBackendsTest, BadWarmBasesFallBackToColdIdenticallyPerBackend) {
  // Satellite of the layered-engine PR: a singular or ill-shaped inherited
  // basis must take the documented cold-start fallback on BOTH backends,
  // reproducing that backend's cold solve bit for bit (same path, not just
  // the same vertex).
  LpModel m = PackageModel(60, 13, /*integer=*/false);

  LpBasis wrong_size;
  wrong_size.basic = {0};
  wrong_size.stat.assign(4, VarStat::kAtLower);

  LpBasis corrupt;  // right shape, nothing marked basic
  corrupt.basic = {0, 1, 2};
  corrupt.stat.assign(m.num_variables() + m.num_constraints(),
                      VarStat::kAtLower);

  LpBasis singular;  // the same column basic in every row
  singular.basic = {0, 0, 0};
  singular.stat.assign(m.num_variables() + m.num_constraints(),
                       VarStat::kAtLower);
  singular.stat[0] = VarStat::kBasic;

  for (FactorizationKind fact : kBackends) {
    SimplexOptions opts;
    opts.factorization = fact;
    auto cold = SolveLp(m, opts);
    ASSERT_TRUE(cold.ok());
    ASSERT_EQ(cold->status, LpStatus::kOptimal);
    for (const LpBasis* bad : {&wrong_size, &corrupt, &singular}) {
      auto warm = SolveLp(m, opts, nullptr, bad);
      ASSERT_TRUE(warm.ok()) << FactorizationKindToString(fact);
      ASSERT_EQ(warm->status, LpStatus::kOptimal)
          << FactorizationKindToString(fact);
      EXPECT_EQ(warm->iterations, cold->iterations)
          << FactorizationKindToString(fact);
      EXPECT_EQ(warm->x, cold->x) << FactorizationKindToString(fact);
    }
  }
}

TEST(SimplexBackendsTest, MilpPackagesAgreeAcrossBackends) {
  for (uint64_t seed : {3u, 17u}) {
    LpModel m = PackageModel(120, seed, /*integer=*/true);
    MilpOptions dense_opts, sparse_opts;
    dense_opts.lp.factorization = FactorizationKind::kDense;
    sparse_opts.lp.factorization = FactorizationKind::kSparseLu;
    auto dense = SolveMilp(m, dense_opts);
    auto sparse = SolveMilp(m, sparse_opts);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(sparse.ok());
    ASSERT_EQ(dense->status, MilpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(sparse->status, MilpStatus::kOptimal) << "seed " << seed;
    // The unique optimal package — integral multiplicities — must match
    // exactly even though the two engines round differently in the last
    // bits and may search different trees.
    EXPECT_EQ(Rounded(sparse->x), Rounded(dense->x)) << "seed " << seed;
    EXPECT_NEAR(sparse->objective, dense->objective, 1e-6) << "seed " << seed;
    EXPECT_GT(sparse->lp_refactorizations, 0);
    EXPECT_GT(dense->lp_refactorizations, 0);
  }
}

TEST(SimplexBackendsTest, ThreadCountIdentityIncludesFactorizationCounters) {
  // PR 5's determinism rule extends through the new layer: nodes, simplex
  // iterations, refactorizations, and basis updates are all committed in
  // serial order, so every counter except speculative_lps is bit-identical
  // for any thread count.
  LpModel m = PackageModel(150, 47, /*integer=*/true);
  MilpOptions base;
  base.lp.factorization = FactorizationKind::kSparseLu;
  auto serial = SolveMilp(m, base);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->status, MilpStatus::kOptimal);
  for (int threads : {2, 4}) {
    MilpOptions opts = base;
    opts.num_threads = threads;
    auto r = SolveMilp(m, opts);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->status, MilpStatus::kOptimal) << "threads " << threads;
    EXPECT_EQ(r->x, serial->x) << "threads " << threads;
    EXPECT_EQ(r->nodes, serial->nodes) << "threads " << threads;
    EXPECT_EQ(r->lp_iterations, serial->lp_iterations)
        << "threads " << threads;
    EXPECT_EQ(r->lp_refactorizations, serial->lp_refactorizations)
        << "threads " << threads;
    EXPECT_EQ(r->lp_basis_updates, serial->lp_basis_updates)
        << "threads " << threads;
  }
}

TEST(SimplexBackendsTest, DevexAndDantzigAgreeOnMilpAnswers) {
  LpModel m = PackageModel(100, 29, /*integer=*/true);
  MilpOptions devex_opts, dantzig_opts;
  devex_opts.lp.pricing = PricingRule::kDevex;
  dantzig_opts.lp.pricing = PricingRule::kDantzig;
  auto devex = SolveMilp(m, devex_opts);
  auto dantzig = SolveMilp(m, dantzig_opts);
  ASSERT_TRUE(devex.ok());
  ASSERT_TRUE(dantzig.ok());
  ASSERT_EQ(devex->status, MilpStatus::kOptimal);
  ASSERT_EQ(dantzig->status, MilpStatus::kOptimal);
  EXPECT_EQ(Rounded(devex->x), Rounded(dantzig->x));
  EXPECT_NEAR(devex->objective, dantzig->objective, 1e-6);
}

TEST(SketchRefineBackendsTest, PackagesAgreeAcrossBackends) {
  db::Catalog catalog;
  catalog.RegisterOrReplace(datagen::GenerateLineitems(8000, 5));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(L) FROM lineitem L "
      "SUCH THAT COUNT(*) = 16 AND SUM(quantity) = 400 "
      "MAXIMIZE SUM(revenue)",
      catalog);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();

  core::SketchRefineOptions dense_opts;
  dense_opts.partition_size = 128;
  dense_opts.milp.lp.factorization = FactorizationKind::kDense;
  core::SketchRefineOptions sparse_opts = dense_opts;
  sparse_opts.milp.lp.factorization = FactorizationKind::kSparseLu;

  auto dense = core::SketchRefine(*aq, dense_opts);
  auto sparse = core::SketchRefine(*aq, sparse_opts);
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
  ASSERT_TRUE(dense->found);
  ASSERT_TRUE(sparse->found);
  // Every sub-ILP runs to proven optimality, so the engine choice changes
  // iteration/refactorization counts, never the package.
  EXPECT_EQ(sparse->package, dense->package)
      << sparse->package.Fingerprint() << " vs " << dense->package.Fingerprint();
  EXPECT_EQ(sparse->objective, dense->objective);
  EXPECT_GT(sparse->lp_refactorizations, 0);
  EXPECT_GT(dense->lp_refactorizations, 0);
}

}  // namespace
}  // namespace pb::solver
