// Parallel branch-and-bound: the speculative tree search must be
// bit-identical to the serial solver for every MilpOptions::num_threads —
// same package, same bounds, same deterministic counters — including under
// incumbent races on models with many equal-objective optima.
//
// Suites here honor PB_TEST_THREADS (see common/env.h): CI runs ctest once
// with PB_TEST_THREADS=1 and once with $(nproc), so the invariance is also
// exercised at whatever the runner's hardware suggests.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/env.h"
#include "common/random.h"
#include "solver/milp.h"

namespace pb::solver {
namespace {

MilpOptions Opts(int threads) {
  MilpOptions o;
  o.num_threads = threads;
  o.time_limit_s = 120.0;
  return o;
}

/// The tight-window package ILP the solver benches use: 400 binaries, an
/// equality COUNT row and two-sided SUM windows — real branching work.
LpModel TightWindowPackageIlp() {
  Rng rng(17);
  LpModel m;
  std::vector<LinearTerm> count, weight, price;
  for (int j = 0; j < 400; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1, rng.UniformReal(1.0, 100.0),
                  true);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
    price.push_back({j, rng.UniformReal(1.0, 50.0)});
  }
  m.AddConstraint("count", count, 8, 8);
  m.AddConstraint("weight", weight, 3600, 3700);
  m.AddConstraint("price", price, 120, 160);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

/// The branchy COUNT-window model from the presolve ablation: children go
/// infeasible by propagation alone, and COUNT saturation fixes binaries.
LpModel BranchyCountWindowIlp(int n, uint64_t seed) {
  Rng rng(seed);
  LpModel m;
  std::vector<LinearTerm> count, weight;
  for (int j = 0; j < n; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1, rng.UniformReal(1.0, 100.0),
                  true);
    count.push_back({j, 1.0});
    weight.push_back({j, std::floor(rng.UniformReal(100.0, 900.0))});
  }
  m.AddConstraint("count", count, 3, 3);
  m.AddConstraint("weight", weight, 800.5, 801.0);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

/// Every feasible package scores the same: 34 unit-objective binaries,
/// pick exactly 5 whose distinct integer weights sum to exactly 586. Many
/// subsets qualify, all with objective 5 — so whichever incumbent commits
/// first prunes every other optimum, and ANY order-dependence in the
/// incumbent race would change the reported package.
LpModel EqualOptimaIlp() {
  LpModel m;
  std::vector<LinearTerm> count, weight;
  for (int j = 0; j < 34; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1, 1.0, true);
    count.push_back({j, 1.0});
    weight.push_back({j, 100.0 + j});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 585.5, 586.5);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

LpModel InfeasibleIlp() {
  LpModel m;
  std::vector<LinearTerm> count;
  for (int j = 0; j < 12; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1, 1.0, true);
    count.push_back({j, 1.0});
  }
  m.AddConstraint("count", count, 20, 25);  // 12 binaries cannot reach 20
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

void ExpectSameSolve(const MilpResult& want, const MilpResult& got,
                     const char* label) {
  EXPECT_EQ(want.status, got.status) << label;
  EXPECT_EQ(want.x, got.x) << label;  // bit-identical package
  EXPECT_EQ(want.objective, got.objective) << label;
  EXPECT_EQ(want.best_bound, got.best_bound) << label;
  EXPECT_EQ(want.nodes, got.nodes) << label;
  EXPECT_EQ(want.lp_iterations, got.lp_iterations) << label;
  EXPECT_EQ(want.lp_dual_iterations, got.lp_dual_iterations) << label;
  EXPECT_EQ(want.presolve_fixed_bounds, got.presolve_fixed_bounds) << label;
  EXPECT_EQ(want.presolve_infeasible_children,
            got.presolve_infeasible_children)
      << label;
}

TEST(ParallelMilpTest, BitIdenticalAcrossThreadCounts) {
  const int env_threads = EnvInt("PB_TEST_THREADS", 4);
  struct Case {
    const char* label;
    LpModel model;
  };
  std::vector<Case> cases;
  cases.push_back({"tight_window", TightWindowPackageIlp()});
  cases.push_back({"branchy_count_window", BranchyCountWindowIlp(60, 21)});
  cases.push_back({"infeasible", InfeasibleIlp()});
  for (Case& c : cases) {
    auto serial = SolveMilp(c.model, Opts(1));
    ASSERT_TRUE(serial.ok()) << c.label;
    EXPECT_EQ(serial->speculative_lps, 0) << c.label;
    for (int threads : {2, 8, env_threads}) {
      auto par = SolveMilp(c.model, Opts(threads));
      ASSERT_TRUE(par.ok()) << c.label << " threads=" << threads;
      ExpectSameSolve(*serial, *par, c.label);
    }
  }
}

TEST(ParallelMilpTest, MinimizeSenseIsAlsoIdentical) {
  Rng rng(5);
  LpModel m;
  std::vector<LinearTerm> count, weight;
  for (int j = 0; j < 80; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1, rng.UniformReal(1.0, 100.0),
                  true);
    count.push_back({j, 1.0});
    weight.push_back({j, std::floor(rng.UniformReal(50.0, 400.0))});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 1000.5, 1001.0);
  m.SetSense(ObjectiveSense::kMinimize);
  auto serial = SolveMilp(m, Opts(1));
  ASSERT_TRUE(serial.ok());
  auto par = SolveMilp(m, Opts(8));
  ASSERT_TRUE(par.ok());
  ExpectSameSolve(*serial, *par, "minimize");
}

TEST(ParallelMilpTest, EqualObjectiveIncumbentRaceIsDeterministic) {
  LpModel m = EqualOptimaIlp();
  // Heuristics off: the root dive would otherwise hand back an incumbent
  // whose objective equals the LP bound and end the search at node one.
  // Without it the tree must branch its way to feasibility, reaching many
  // equally-scoring leaves whose commits race.
  MilpOptions serial_opts = Opts(1);
  serial_opts.rounding_heuristic = false;
  auto serial = SolveMilp(m, serial_opts);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->status, MilpStatus::kOptimal);
  EXPECT_EQ(serial->objective, 5.0);
  // A real tree, or this test stresses nothing.
  ASSERT_GT(serial->nodes, 50);
  // Helpers race to pre-solve nodes whose commits would each yield an
  // equally good incumbent; repetition varies the interleavings. The
  // committed package must never move.
  for (int rep = 0; rep < 5; ++rep) {
    MilpOptions par_opts = Opts(8);
    par_opts.rounding_heuristic = false;
    auto par = SolveMilp(m, par_opts);
    ASSERT_TRUE(par.ok()) << "rep " << rep;
    ExpectSameSolve(*serial, *par, "equal_optima");
  }
}

TEST(ParallelMilpTest, NodeBudgetStopsAtTheSameNode) {
  LpModel m = TightWindowPackageIlp();
  MilpOptions tight = Opts(1);
  tight.max_nodes = 25;  // stop mid-search: bounds must still agree
  auto serial = SolveMilp(m, tight);
  ASSERT_TRUE(serial.ok());
  tight.num_threads = 8;
  auto par = SolveMilp(m, tight);
  ASSERT_TRUE(par.ok());
  ExpectSameSolve(*serial, *par, "node_budget");
}

TEST(ParallelMilpTest, CrossSolveWarmStartChainsIdentically) {
  // One MilpWarmStart threaded through drifting re-solves (the
  // SketchRefine repair pattern): pseudocost history and root bases must
  // accumulate identically whatever the thread count.
  auto run_chain = [](int threads) {
    MilpWarmStart warm;
    std::vector<MilpResult> results;
    for (int shift = 0; shift < 4; ++shift) {
      Rng rng(29);
      LpModel m;
      std::vector<LinearTerm> count, weight;
      for (int j = 0; j < 120; ++j) {
        m.AddVariable("x" + std::to_string(j), 0, 1,
                      rng.UniformReal(1.0, 100.0), true);
        count.push_back({j, 1.0});
        weight.push_back({j, std::floor(rng.UniformReal(100.0, 900.0))});
      }
      m.AddConstraint("count", count, 3, 3);
      m.AddConstraint("weight", weight, 900.5 + shift, 901.0 + shift);
      m.SetSense(ObjectiveSense::kMaximize);
      MilpOptions o = Opts(threads);
      o.warm = &warm;
      auto r = SolveMilp(m, o);
      EXPECT_TRUE(r.ok());
      if (r.ok()) results.push_back(std::move(*r));
    }
    return results;
  };
  auto serial = run_chain(1);
  auto par = run_chain(EnvInt("PB_TEST_THREADS", 8));
  ASSERT_EQ(serial.size(), par.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectSameSolve(serial[i], par[i], "warm_chain");
  }
}

TEST(ParallelMilpTest, CounterAggregationSanity) {
  LpModel m = BranchyCountWindowIlp(60, 21);
  auto r = SolveMilp(m, Opts(8));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, MilpStatus::kOptimal);
  EXPECT_GT(r->nodes, 0);
  EXPECT_GT(r->lp_iterations, 0);
  EXPECT_LE(r->lp_dual_iterations, r->lp_iterations);
  EXPECT_GE(r->presolve_fixed_bounds, 0);
  EXPECT_GE(r->presolve_infeasible_children, 0);
  // Speculation is diagnostic-only and timing-dependent; it can be any
  // non-negative count, and committed counters must not depend on it.
  EXPECT_GE(r->speculative_lps, 0);
  auto serial = SolveMilp(m, Opts(1));
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->speculative_lps, 0);
  EXPECT_EQ(serial->nodes, r->nodes);
  EXPECT_EQ(serial->lp_iterations, r->lp_iterations);
}

TEST(ParallelMilpTest, PureLpDegradesToSingleSolveAnyThreadCount) {
  LpModel m;
  std::vector<LinearTerm> row;
  for (int j = 0; j < 10; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1, 1.0, /*is_integer=*/false);
    row.push_back({j, 1.0});
  }
  m.AddConstraint("cap", row, -kInfinity, 4.0);
  m.SetSense(ObjectiveSense::kMaximize);
  auto serial = SolveMilp(m, Opts(1));
  auto par = SolveMilp(m, Opts(8));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(par.ok());
  ExpectSameSolve(*serial, *par, "pure_lp");
  EXPECT_EQ(par->speculative_lps, 0);  // nothing to speculate on
}

}  // namespace
}  // namespace pb::solver
