// Tests for the diverse-package-results extension (§5's stated challenge)
// and the Jaccard multiset distance underneath it.

#include <gtest/gtest.h>

#include <set>

#include "core/enumerator.h"
#include "core/package.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

namespace pb::core {
namespace {

Package Make(std::initializer_list<std::pair<size_t, int64_t>> items) {
  Package p;
  for (auto [row, mult] : items) p.Add(row, mult);
  return p;
}

TEST(JaccardTest, IdenticalIsZero) {
  Package a = Make({{1, 1}, {2, 2}});
  EXPECT_DOUBLE_EQ(PackageJaccardDistance(a, a), 0.0);
}

TEST(JaccardTest, DisjointIsOne) {
  Package a = Make({{1, 1}, {2, 1}});
  Package b = Make({{3, 1}, {4, 1}});
  EXPECT_DOUBLE_EQ(PackageJaccardDistance(a, b), 1.0);
}

TEST(JaccardTest, PartialOverlap) {
  // A = {1, 2}, B = {2, 3}: intersection 1, union 3 -> 1 - 1/3.
  Package a = Make({{1, 1}, {2, 1}});
  Package b = Make({{2, 1}, {3, 1}});
  EXPECT_NEAR(PackageJaccardDistance(a, b), 2.0 / 3.0, 1e-12);
}

TEST(JaccardTest, MultiplicitiesCount) {
  // A = {1 x2}, B = {1 x1}: intersection 1, union 2 -> 0.5.
  Package a = Make({{1, 2}});
  Package b = Make({{1, 1}});
  EXPECT_NEAR(PackageJaccardDistance(a, b), 0.5, 1e-12);
}

TEST(JaccardTest, SymmetricAndBounded) {
  Package a = Make({{1, 2}, {5, 1}});
  Package b = Make({{1, 1}, {7, 3}});
  double ab = PackageJaccardDistance(a, b);
  EXPECT_DOUBLE_EQ(ab, PackageJaccardDistance(b, a));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

TEST(JaccardTest, EmptyPackages) {
  Package empty;
  Package a = Make({{1, 1}});
  EXPECT_DOUBLE_EQ(PackageJaccardDistance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(PackageJaccardDistance(empty, a), 1.0);
}

class DiversityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.RegisterOrReplace(datagen::GenerateRecipes(60, 47));
  }
  db::Catalog catalog_;
};

TEST_F(DiversityTest, DiverseSetIsMoreSpreadThanTopK) {
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 3 AND SUM(calories) <= 2400 "
      "MAXIMIZE SUM(protein)",
      catalog_);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  const size_t k = 5;
  auto top = EnumerateViaSolver(*aq, [&] {
    EnumerateOptions o;
    o.max_packages = k;
    return o;
  }());
  auto diverse = EnumerateDiverse(*aq, k, /*pool_factor=*/6);
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(diverse.ok());
  ASSERT_EQ(diverse->size(), k);

  auto min_pairwise = [](const std::vector<Package>& ps) {
    double mn = 1.0;
    for (size_t i = 0; i < ps.size(); ++i) {
      for (size_t j = i + 1; j < ps.size(); ++j) {
        mn = std::min(mn, PackageJaccardDistance(ps[i], ps[j]));
      }
    }
    return mn;
  };
  // Diversification must not decrease the minimum pairwise distance.
  EXPECT_GE(min_pairwise(*diverse), min_pairwise(*top) - 1e-12);
  // All results are valid, distinct packages.
  std::set<std::string> seen;
  for (const Package& p : *diverse) {
    EXPECT_TRUE(*IsValidPackage(*aq, p));
    EXPECT_TRUE(seen.insert(p.Fingerprint()).second);
  }
}

TEST_F(DiversityTest, BestPackageAlwaysIncluded) {
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 2 AND SUM(calories) <= 1500 "
      "MAXIMIZE SUM(protein)",
      catalog_);
  ASSERT_TRUE(aq.ok());
  auto best = EnumerateViaSolver(*aq, [&] {
    EnumerateOptions o;
    o.max_packages = 1;
    return o;
  }());
  auto diverse = EnumerateDiverse(*aq, 4);
  ASSERT_TRUE(best.ok());
  ASSERT_TRUE(diverse.ok());
  ASSERT_FALSE(best->empty());
  ASSERT_FALSE(diverse->empty());
  EXPECT_EQ((*diverse)[0].Fingerprint(), (*best)[0].Fingerprint());
}

TEST_F(DiversityTest, SmallPoolsReturnedWhole) {
  // A query with very few solutions: diversification degrades gracefully.
  db::Catalog tiny;
  tiny.RegisterOrReplace(datagen::GenerateRecipes(6, 2));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 5", tiny);
  ASSERT_TRUE(aq.ok());
  auto diverse = EnumerateDiverse(*aq, 50);
  ASSERT_TRUE(diverse.ok());
  EXPECT_EQ(diverse->size(), 6u);  // C(6,5)
}

TEST_F(DiversityTest, ZeroRequestedIsEmpty) {
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 2", catalog_);
  ASSERT_TRUE(aq.ok());
  auto diverse = EnumerateDiverse(*aq, 0);
  ASSERT_TRUE(diverse.ok());
  EXPECT_TRUE(diverse->empty());
}

TEST_F(DiversityTest, RepeatQueriesUseExhaustivePool) {
  db::Catalog tiny;
  tiny.RegisterOrReplace(datagen::GenerateRecipes(8, 3));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R REPEAT 2 SUCH THAT COUNT(*) = 3",
      tiny);
  ASSERT_TRUE(aq.ok());
  auto diverse = EnumerateDiverse(*aq, 4);
  ASSERT_TRUE(diverse.ok());
  EXPECT_EQ(diverse->size(), 4u);
  for (const Package& p : *diverse) {
    EXPECT_TRUE(*IsValidPackage(*aq, p));
  }
}

}  // namespace
}  // namespace pb::core
