// Property tests for the expression evaluator: randomized numeric
// expression trees are evaluated both by db::Expr and by a tiny independent
// reference interpreter carried alongside the generator. Agreement across
// hundreds of trees is the substrate's correctness evidence for every
// arithmetic/comparison path the engine relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "common/random.h"
#include "db/expr.h"
#include "db/table.h"

namespace pb::db {
namespace {

/// Reference value: double or "null" (three-valued logic collapses to
/// optional for the numeric fragment we generate).
using Ref = std::optional<double>;

struct GeneratedExpr {
  ExprPtr expr;
  Ref reference;  // value over the fixed test tuple
};

class ExprGen {
 public:
  ExprGen(Rng* rng, const Schema& schema, const Tuple& tuple)
      : rng_(rng), schema_(schema), tuple_(tuple) {}

  /// Generates a numeric expression of bounded depth with its reference
  /// value. Division is only generated with non-zero constant divisors.
  GeneratedExpr Numeric(int depth) {
    if (depth == 0 || rng_->Bernoulli(0.3)) {
      // Leaf: literal or column.
      if (rng_->Bernoulli(0.5)) {
        double v = std::round(rng_->UniformReal(-20, 20));
        return {LitDouble(v), v};
      }
      size_t c = rng_->Index(schema_.num_columns());
      const Value& cell = tuple_[c];
      Ref ref;
      if (cell.is_numeric()) ref = *cell.ToDouble();
      return {Col(schema_.column(c).name), ref};
    }
    GeneratedExpr l = Numeric(depth - 1);
    GeneratedExpr r = Numeric(depth - 1);
    switch (rng_->UniformInt(0, 3)) {
      case 0:
        return {Binary(BinaryOp::kAdd, l.expr, r.expr),
                Lift(l, r, std::plus<>())};
      case 1:
        return {Binary(BinaryOp::kSub, l.expr, r.expr),
                Lift(l, r, std::minus<>())};
      case 2:
        return {Binary(BinaryOp::kMul, l.expr, r.expr),
                Lift(l, r, std::multiplies<>())};
      default: {
        // Safe division: constant non-zero divisor.
        double d = 0;
        while (d == 0) d = std::round(rng_->UniformReal(-9, 9));
        Ref ref = l.reference ? Ref(*l.reference / d) : std::nullopt;
        return {Binary(BinaryOp::kDiv, l.expr, LitDouble(d)), ref};
      }
    }
  }

  /// Generates a boolean expression with its reference truth (three-valued:
  /// nullopt = NULL).
  struct GeneratedBool {
    ExprPtr expr;
    std::optional<bool> reference;
  };

  GeneratedBool Boolean(int depth) {
    if (depth == 0 || rng_->Bernoulli(0.4)) {
      GeneratedExpr l = Numeric(1);
      GeneratedExpr r = Numeric(1);
      BinaryOp op = static_cast<BinaryOp>(
          static_cast<int>(BinaryOp::kEq) +
          rng_->UniformInt(0, 5));  // kEq..kGe
      std::optional<bool> ref;
      if (l.reference && r.reference) {
        double a = *l.reference, b = *r.reference;
        switch (op) {
          case BinaryOp::kEq: ref = (a == b); break;
          case BinaryOp::kNe: ref = (a != b); break;
          case BinaryOp::kLt: ref = (a < b); break;
          case BinaryOp::kLe: ref = (a <= b); break;
          case BinaryOp::kGt: ref = (a > b); break;
          case BinaryOp::kGe: ref = (a >= b); break;
          default: break;
        }
      }
      return {Binary(op, l.expr, r.expr), ref};
    }
    GeneratedBool l = Boolean(depth - 1);
    GeneratedBool r = Boolean(depth - 1);
    if (rng_->Bernoulli(0.2)) {
      // NOT
      std::optional<bool> ref =
          l.reference ? std::optional<bool>(!*l.reference) : std::nullopt;
      return {Unary(UnaryOp::kNot, l.expr), ref};
    }
    bool is_and = rng_->Bernoulli(0.5);
    // Kleene logic.
    std::optional<bool> ref;
    if (is_and) {
      if (l.reference && r.reference) ref = *l.reference && *r.reference;
      else if ((l.reference && !*l.reference) ||
               (r.reference && !*r.reference)) ref = false;
    } else {
      if (l.reference && r.reference) ref = *l.reference || *r.reference;
      else if ((l.reference && *l.reference) ||
               (r.reference && *r.reference)) ref = true;
    }
    return {Binary(is_and ? BinaryOp::kAnd : BinaryOp::kOr, l.expr, r.expr),
            ref};
  }

 private:
  template <typename F>
  static Ref Lift(const GeneratedExpr& l, const GeneratedExpr& r, F f) {
    if (!l.reference || !r.reference) return std::nullopt;
    return f(*l.reference, *r.reference);
  }

  Rng* rng_;
  const Schema& schema_;
  const Tuple& tuple_;
};

class ExprPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    schema_ = Schema({{"a", ValueType::kDouble},
                      {"b", ValueType::kDouble},
                      {"c", ValueType::kDouble},
                      {"n", ValueType::kDouble}});
    tuple_ = {Value::Double(3), Value::Double(-7), Value::Double(0.5),
              Value::Null()};
  }
  Schema schema_;
  Tuple tuple_;
};

TEST_P(ExprPropertyTest, NumericTreesMatchReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48271 + 11);
  ExprGen gen(&rng, schema_, tuple_);
  for (int trial = 0; trial < 50; ++trial) {
    GeneratedExpr g = gen.Numeric(4);
    ASSERT_TRUE(g.expr->Bind(schema_).ok());
    auto v = g.expr->Eval(tuple_);
    ASSERT_TRUE(v.ok()) << g.expr->ToString() << ": "
                        << v.status().ToString();
    if (!g.reference) {
      EXPECT_TRUE(v->is_null()) << g.expr->ToString();
    } else {
      ASSERT_TRUE(v->is_numeric()) << g.expr->ToString();
      EXPECT_NEAR(*v->ToDouble(), *g.reference,
                  1e-9 * (1 + std::abs(*g.reference)))
          << g.expr->ToString();
    }
  }
}

TEST_P(ExprPropertyTest, BooleanTreesMatchKleeneReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 16807 + 3);
  ExprGen gen(&rng, schema_, tuple_);
  for (int trial = 0; trial < 50; ++trial) {
    auto g = gen.Boolean(3);
    ASSERT_TRUE(g.expr->Bind(schema_).ok());
    auto v = g.expr->Eval(tuple_);
    ASSERT_TRUE(v.ok()) << g.expr->ToString();
    if (!g.reference) {
      EXPECT_TRUE(v->is_null()) << g.expr->ToString();
    } else {
      ASSERT_TRUE(v->is_bool()) << g.expr->ToString();
      EXPECT_EQ(v->AsBool(), *g.reference) << g.expr->ToString();
    }
    // Matches() treats NULL as false — cross-check.
    auto m = g.expr->Matches(tuple_);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(*m, g.reference.value_or(false)) << g.expr->ToString();
  }
}

TEST_P(ExprPropertyTest, CloneEvaluatesIdentically) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 69621 + 5);
  ExprGen gen(&rng, schema_, tuple_);
  for (int trial = 0; trial < 20; ++trial) {
    GeneratedExpr g = gen.Numeric(3);
    ExprPtr clone = g.expr->Clone();
    ASSERT_TRUE(g.expr->Bind(schema_).ok());
    ASSERT_TRUE(clone->Bind(schema_).ok());
    auto a = g.expr->Eval(tuple_);
    auto b = clone->Eval(tuple_);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->Compare(*b), 0) << g.expr->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace pb::db
