// Deliberate thread-safety violation. This translation unit must FAIL to
// compile under -Wthread-safety -Werror; the negative-compile runner
// (run_negative_compile.py) asserts exactly that. If it ever compiles
// clean, the annotation macros have stopped expanding (or the CI lane has
// stopped passing the flags) and the whole thread-safety gate is inert.

#include "common/annotations.h"

namespace {

struct Counter {
  pb::Mutex mu;
  int value PB_GUARDED_BY(mu) = 0;
};

}  // namespace

// Reads and writes `value` without holding `mu`: the analysis must reject
// this ("writing variable 'value' requires holding mutex 'mu'").
int BumpWithoutLock(Counter& c) { return ++c.value; }
