#!/usr/bin/env python3
"""Negative-compile test for the Clang thread-safety annotations.

Proves the -Wthread-safety gate actually bites:
  1. ok.cc (correctly locked)   must compile CLEAN  under -Werror.
  2. violation.cc (lock omitted) must FAIL, with a thread-safety
     diagnostic in the output.

Only Clang implements the analysis, so without a clang++ on PATH the test
exits 77 (CTest SKIP_RETURN_CODE) — it runs for real in the clang CI lane
and skips on GCC-only developer machines.

Usage: run_negative_compile.py <src_include_dir>
"""

import shutil
import subprocess
import sys
import pathlib

SKIP = 77

FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror",
]


def compile_file(clang: str, include_dir: str, source: pathlib.Path):
    return subprocess.run(
        [clang, *FLAGS, "-I", include_dir, str(source)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <src_include_dir>")
        return 2
    include_dir = sys.argv[1]
    here = pathlib.Path(__file__).resolve().parent

    clang = None
    for candidate in ("clang++-18", "clang++-17", "clang++"):
        if shutil.which(candidate):
            clang = candidate
            break
    if clang is None:
        print("no clang++ on PATH; thread-safety analysis needs Clang -- skipping")
        return SKIP

    ok = compile_file(clang, include_dir, here / "ok.cc")
    if ok.returncode != 0:
        print("FAIL: ok.cc (correctly locked) did not compile clean;")
        print("the wrapper header or toolchain is broken, not the seeded bug:")
        print(ok.stdout)
        return 1

    bad = compile_file(clang, include_dir, here / "violation.cc")
    if bad.returncode == 0:
        print("FAIL: violation.cc (unlocked guarded access) compiled clean --")
        print("the thread-safety annotations are not being enforced.")
        return 1
    if "-Wthread-safety" not in bad.stdout and "thread safety" not in bad.stdout:
        print("FAIL: violation.cc failed for a reason other than thread safety:")
        print(bad.stdout)
        return 1

    print(f"PASS ({clang}): ok.cc clean, violation.cc rejected by -Wthread-safety")
    return 0


if __name__ == "__main__":
    sys.exit(main())
