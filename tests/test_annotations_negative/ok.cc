// Control for the negative-compile test: identical shape to violation.cc
// but correctly locked, so it must compile CLEAN under -Wthread-safety
// -Werror. If this file fails, the failure of violation.cc proves nothing
// (the toolchain or the wrapper header is broken, not the seeded bug).

#include "common/annotations.h"

namespace {

struct Counter {
  pb::Mutex mu;
  int value PB_GUARDED_BY(mu) = 0;
};

}  // namespace

int BumpWithLock(Counter& c) {
  pb::MutexLock lock(&c.mu);
  return ++c.value;
}
