// Tests for the columnar storage path: Column / NullBitmap /
// NumericColumnView, the Table row-view compatibility adapters, stats
// equality between checked and unchecked appends, INT→DOUBLE widening,
// and CSV round-trips over NULL-heavy columns.

#include <gtest/gtest.h>

#include <sstream>

#include "db/csv.h"
#include "db/expr.h"
#include "db/ops.h"
#include "db/table.h"

namespace pb::db {
namespace {

Schema MixedSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"price", ValueType::kDouble},
                 {"name", ValueType::kString}});
}

Table MakeMixedTable() {
  Table t("mixed", MixedSchema());
  t.StartRow().Int(1).Double(10.5).String("a").Finish();
  t.StartRow().Null().Double(20.0).Null().Finish();
  t.StartRow().Int(3).Null().String("c").Finish();
  t.StartRow().Int(4).Double(-2.25).String("d").Finish();
  return t;
}

// ----- NullBitmap ------------------------------------------------------------

TEST(NullBitmapTest, TracksBitsAcrossWordBoundaries) {
  NullBitmap bm;
  for (int i = 0; i < 130; ++i) bm.Append(i % 3 == 0);
  ASSERT_EQ(bm.size(), 130u);
  int64_t nulls = 0;
  for (int i = 0; i < 130; ++i) {
    EXPECT_EQ(bm.Test(i), i % 3 == 0) << "bit " << i;
    if (i % 3 == 0) ++nulls;
  }
  EXPECT_EQ(bm.null_count(), nulls);
  EXPECT_TRUE(bm.any());
}

TEST(NullBitmapTest, EmptyAndAllValid) {
  NullBitmap bm;
  EXPECT_EQ(bm.size(), 0u);
  EXPECT_FALSE(bm.any());
  for (int i = 0; i < 70; ++i) bm.Append(false);
  EXPECT_FALSE(bm.any());
  EXPECT_EQ(bm.null_count(), 0);
}

// ----- Column storage --------------------------------------------------------

TEST(ColumnTest, TypedStorageAndGetValue) {
  Column c(ValueType::kDouble);
  c.AppendDouble(1.5);
  c.AppendNull();
  c.AppendInt(2);  // widens into the double span
  ASSERT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.GetValue(0).is_double());
  EXPECT_TRUE(c.GetValue(1).is_null());
  EXPECT_TRUE(c.GetValue(2).is_double());
  EXPECT_DOUBLE_EQ(c.GetValue(2).AsDoubleExact(), 2.0);
  // The contiguous span holds a placeholder at the null slot.
  ASSERT_EQ(c.doubles().size(), 3u);
  EXPECT_DOUBLE_EQ(c.doubles()[0], 1.5);
  EXPECT_DOUBLE_EQ(c.doubles()[2], 2.0);
}

TEST(ColumnTest, UntypedStorageKeepsHeterogeneousValues) {
  Column c(ValueType::kNull);
  c.AppendValue(Value::Int(7));
  c.AppendValue(Value::String("x"));
  c.AppendValue(Value::Null());
  EXPECT_TRUE(c.GetValue(0).is_int());
  EXPECT_TRUE(c.GetValue(1).is_string());
  EXPECT_TRUE(c.GetValue(2).is_null());
  EXPECT_EQ(c.stats().non_null_count, 2);
  EXPECT_EQ(c.stats().null_count, 1);
  // Numeric accumulators only see the numeric cell.
  EXPECT_DOUBLE_EQ(c.stats().sum, 7.0);
  EXPECT_DOUBLE_EQ(*c.stats().min, 7.0);
}

TEST(ColumnTest, CompareMatchesValueCompare) {
  Column c(ValueType::kDouble);
  c.AppendDouble(2.0);
  c.AppendNull();
  c.AppendDouble(-1.0);
  c.AppendDouble(2.0);
  EXPECT_GT(c.Compare(0, 2), 0);
  EXPECT_EQ(c.Compare(0, 3), 0);
  EXPECT_LT(c.Compare(1, 2), 0);  // NULL sorts first
  EXPECT_EQ(c.Compare(1, 1), 0);
}

// ----- NumericColumnView -----------------------------------------------------

TEST(NumericColumnViewTest, DoubleSpanWithNullMask) {
  Table t = MakeMixedTable();
  auto view = t.NumericView("price");
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->size(), 4u);
  ASSERT_NE(view->doubles(), nullptr);
  EXPECT_EQ(view->ints(), nullptr);
  EXPECT_TRUE(view->has_nulls());
  EXPECT_EQ(view->null_count(), 1);
  EXPECT_FALSE(view->IsNull(0));
  EXPECT_TRUE(view->IsNull(2));
  EXPECT_DOUBLE_EQ((*view)[0], 10.5);
  EXPECT_DOUBLE_EQ((*view)[3], -2.25);
}

TEST(NumericColumnViewTest, IntSpanCoercesThroughSubscript) {
  Table t = MakeMixedTable();
  auto view = t.NumericView("id");
  ASSERT_TRUE(view.ok());
  ASSERT_NE(view->ints(), nullptr);
  EXPECT_EQ(view->doubles(), nullptr);
  EXPECT_DOUBLE_EQ((*view)[0], 1.0);
  EXPECT_DOUBLE_EQ((*view)[3], 4.0);
  EXPECT_TRUE(view->IsNull(1));
}

TEST(NumericColumnViewTest, RejectsNonNumericColumns) {
  Table t = MakeMixedTable();
  EXPECT_FALSE(t.NumericView("name").ok());
  EXPECT_FALSE(t.NumericView(17).ok());
  EXPECT_FALSE(t.NumericView("no_such_column").ok());
}

TEST(NumericColumnViewTest, ViewMatchesAtForEveryCell) {
  Table t = MakeMixedTable();
  auto view = t.NumericView("price");
  ASSERT_TRUE(view.ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    Value v = t.at(r, 1);
    EXPECT_EQ(view->IsNull(r), v.is_null());
    if (!v.is_null()) {
      EXPECT_DOUBLE_EQ((*view)[r], *v.ToDouble());
    }
  }
}

// ----- Row-view compatibility adapters ---------------------------------------

TEST(RowViewTest, RowRangeIteratesAllRows) {
  Table t = MakeMixedTable();
  size_t i = 0;
  for (const Tuple& row : t.rows()) {
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row, t.row(i));
    ++i;
  }
  EXPECT_EQ(i, t.num_rows());
  EXPECT_EQ(t.rows().size(), t.num_rows());
  EXPECT_EQ(t.rows()[2], t.row(2));
}

TEST(RowViewTest, MaterializedRowMatchesAt) {
  Table t = MakeMixedTable();
  Tuple r = t.row(1);
  EXPECT_TRUE(r[0].is_null());
  EXPECT_DOUBLE_EQ(r[1].AsDoubleExact(), 20.0);
  EXPECT_EQ(t.at(1, 1).Compare(r[1]), 0);
}

TEST(RowViewTest, ExprEvalOverTableMatchesTupleEval) {
  Table t = MakeMixedTable();
  ExprPtr e = Binary(BinaryOp::kGt, Col("price"), LitDouble(0.0));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    auto via_table = e->Eval(t, r);
    auto via_tuple = e->Eval(t.row(r));
    ASSERT_TRUE(via_table.ok());
    ASSERT_TRUE(via_tuple.ok());
    EXPECT_EQ(via_table->Compare(*via_tuple), 0);
  }
}

#ifndef NDEBUG
TEST(RowViewTest, AtIsBoundsCheckedInDebugBuilds) {
  Table t = MakeMixedTable();
  EXPECT_DEATH((void)t.at(t.num_rows(), 0), "out of range");
  EXPECT_DEATH((void)t.at(0, 99), "out of range");
}
#endif

// ----- Append semantics ------------------------------------------------------

TEST(AppendTest, IntWidensIntoDoubleColumnOnCheckedAppend) {
  Table t("w", Schema({{"x", ValueType::kDouble}}));
  ASSERT_TRUE(t.Append({Value::Int(3)}).ok());
  EXPECT_TRUE(t.at(0, 0).is_double());
  EXPECT_DOUBLE_EQ(t.at(0, 0).AsDoubleExact(), 3.0);
}

TEST(AppendTest, IntWidensIntoDoubleColumnOnUncheckedAppend) {
  Table t("w", Schema({{"x", ValueType::kDouble}}));
  t.AppendUnchecked({Value::Int(3)});
  EXPECT_TRUE(t.at(0, 0).is_double());
  EXPECT_DOUBLE_EQ(t.at(0, 0).AsDoubleExact(), 3.0);
  auto view = t.NumericView(size_t{0});
  ASSERT_TRUE(view.ok());
  EXPECT_DOUBLE_EQ((*view)[0], 3.0);
}

TEST(AppendTest, TypeMismatchIsRejectedByCheckedAppend) {
  Table t("w", Schema({{"x", ValueType::kInt}}));
  EXPECT_FALSE(t.Append({Value::String("nope")}).ok());
  EXPECT_FALSE(t.Append({Value::Double(1.5)}).ok());  // no narrowing
  ASSERT_TRUE(t.Append({Value::Null()}).ok());        // NULL fits anywhere
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(AppendTest, StatsEqualBetweenCheckedAndUncheckedAppends) {
  const Schema schema = MixedSchema();
  std::vector<Tuple> rows = {
      {Value::Int(1), Value::Double(10.5), Value::String("a")},
      {Value::Null(), Value::Double(20.0), Value::Null()},
      {Value::Int(3), Value::Null(), Value::String("c")},
      {Value::Int(4), Value::Int(7), Value::String("d")},  // widening cell
  };
  Table checked("checked", schema);
  Table unchecked("unchecked", schema);
  for (const Tuple& r : rows) {
    ASSERT_TRUE(checked.Append(r).ok());
    unchecked.AppendUnchecked(r);
  }
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const ColumnStats& a = checked.stats(c);
    const ColumnStats& b = unchecked.stats(c);
    EXPECT_EQ(a.non_null_count, b.non_null_count) << "column " << c;
    EXPECT_EQ(a.null_count, b.null_count) << "column " << c;
    EXPECT_EQ(a.min.has_value(), b.min.has_value()) << "column " << c;
    if (a.min) EXPECT_DOUBLE_EQ(*a.min, *b.min) << "column " << c;
    if (a.max) EXPECT_DOUBLE_EQ(*a.max, *b.max) << "column " << c;
    EXPECT_DOUBLE_EQ(a.sum, b.sum) << "column " << c;
    for (size_t r = 0; r < rows.size(); ++r) {
      EXPECT_EQ(checked.at(r, c).Compare(unchecked.at(r, c)), 0);
    }
  }
}

TEST(AppendTest, RowAppenderMatchesAppendUnchecked) {
  Table a("a", MixedSchema());
  a.StartRow().Int(1).Double(2.5).String("s").Finish();
  a.StartRow().Null().Null().Null().Finish();
  Table b("b", MixedSchema());
  b.AppendUnchecked({Value::Int(1), Value::Double(2.5), Value::String("s")});
  b.AppendUnchecked({Value::Null(), Value::Null(), Value::Null()});
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.row(r), b.row(r));
  }
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(a.stats(c).non_null_count, b.stats(c).non_null_count);
    EXPECT_DOUBLE_EQ(a.stats(c).sum, b.stats(c).sum);
  }
}

TEST(AppendTest, AppendRowFromCopiesColumnWise) {
  Table src = MakeMixedTable();
  Table dst("dst", src.schema());
  dst.AppendRowFrom(src, 2);
  dst.AppendRowFrom(src, 0);
  ASSERT_EQ(dst.num_rows(), 2u);
  EXPECT_EQ(dst.row(0), src.row(2));
  EXPECT_EQ(dst.row(1), src.row(0));
  EXPECT_EQ(dst.stats(1).null_count, 1);
}

// ----- Columnar fast paths match the generic path ----------------------------

TEST(FastPathTest, GatherNumericMatchesPerRowEval) {
  Table t = MakeMixedTable();
  std::vector<size_t> rows = {3, 0, 2, 1};
  // Bare column reference: the vectorized span gather.
  auto fast = GatherNumeric(t, Col("price"), rows);
  ASSERT_TRUE(fast.ok());
  // Arithmetic expression: the generic per-row path.
  auto generic = GatherNumeric(
      t, Binary(BinaryOp::kAdd, Col("price"), LitDouble(0.0)), rows);
  ASSERT_TRUE(generic.ok());
  ASSERT_EQ(fast->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*fast)[i].has_value(), (*generic)[i].has_value()) << i;
    if ((*fast)[i]) {
      EXPECT_DOUBLE_EQ(*(*fast)[i], *(*generic)[i]);
    }
  }
}

TEST(FastPathTest, GatherNumericRejectsOutOfRangeRows) {
  Table t = MakeMixedTable();
  // Both the span fast path and the generic expression fallback must
  // enforce the bounds contract.
  EXPECT_FALSE(GatherNumeric(t, Col("price"), {0, 99}).ok());
  EXPECT_FALSE(
      GatherNumeric(t, Binary(BinaryOp::kMul, Col("price"), LitDouble(2.0)),
                    {0, 99})
          .ok());
}

TEST(ColumnarOpsTest, SelectColumnsRejectsDuplicatesAndBadIndices) {
  Table t = MakeMixedTable();
  EXPECT_FALSE(t.SelectColumns({0, 0}, "dup").ok());
  EXPECT_FALSE(t.SelectColumns({0, 42}, "oob").ok());
  auto ok = t.SelectColumns({2, 0}, "ok");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->schema().column(0).name, "name");
  EXPECT_EQ(ok->num_rows(), t.num_rows());
}

TEST(FastPathTest, AggregateRowsColumnFastPathMatchesExprPath) {
  Table t = MakeMixedTable();
  std::vector<size_t> rows = {0, 1, 2, 3};
  std::vector<int64_t> mult = {2, 1, 3, 1};
  for (AggFunc f : {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                    AggFunc::kMin, AggFunc::kMax}) {
    auto fast = AggregateRows(t, f, Col("price"), rows, mult);
    auto generic = AggregateRows(
        t, f, Binary(BinaryOp::kMul, Col("price"), LitDouble(1.0)), rows,
        mult);
    ASSERT_TRUE(fast.ok()) << AggFuncToString(f);
    ASSERT_TRUE(generic.ok()) << AggFuncToString(f);
    EXPECT_EQ(fast->Compare(*generic), 0) << AggFuncToString(f);
  }
}

TEST(FastPathTest, WholeTableAggregateComesFromStats) {
  Table t = MakeMixedTable();
  auto sum = Aggregate(t, AggFunc::kSum, Col("price"));
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum->ToDouble(), 10.5 + 20.0 - 2.25);
  auto mn = Aggregate(t, AggFunc::kMin, Col("id"));
  ASSERT_TRUE(mn.ok());
  EXPECT_TRUE(mn->is_int());
  EXPECT_EQ(mn->AsInt(), 1);
  auto cnt = Aggregate(t, AggFunc::kCount, Col("name"));
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ(cnt->AsInt(), 3);
}

// ----- CSV round-trips over the columnar path --------------------------------

TEST(CsvColumnarTest, RoundTripPreservesNullHeavyColumns) {
  Schema schema({{"k", ValueType::kInt},
                 {"sparse", ValueType::kDouble},
                 {"label", ValueType::kString}});
  Table t("sparse", schema);
  for (int i = 0; i < 50; ++i) {
    auto r = t.StartRow();
    r.Int(i);
    if (i % 5 == 0) {
      r.Double(i * 1.5);
    } else {
      r.Null();
    }
    if (i % 7 == 0) {
      r.String("x" + std::to_string(i));
    } else {
      r.Null();
    }
    r.Finish();
  }
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, "sparse");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      EXPECT_EQ(back->at(r, c).Compare(t.at(r, c)), 0)
          << "cell (" << r << ", " << c << ")";
    }
  }
  // Stats of the reloaded table match the original's.
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    EXPECT_EQ(back->stats(c).null_count, t.stats(c).null_count);
    EXPECT_EQ(back->stats(c).non_null_count, t.stats(c).non_null_count);
    EXPECT_DOUBLE_EQ(back->stats(c).sum, t.stats(c).sum);
  }
}

TEST(CsvColumnarTest, RoundTripWidensIntsReadIntoDoubleColumns) {
  // A column whose cells are "1", "2.5": inference says DOUBLE; the int
  // cell is widened on append and lands in the contiguous double span.
  std::istringstream in("x\n1\n2.5\n");
  auto t = ReadCsv(in, "widen");
  ASSERT_TRUE(t.ok());
  auto view = t->NumericView("x");
  ASSERT_TRUE(view.ok());
  ASSERT_NE(view->doubles(), nullptr);
  EXPECT_DOUBLE_EQ((*view)[0], 1.0);
  EXPECT_DOUBLE_EQ((*view)[1], 2.5);
}

// ----- Columnar relational ops ----------------------------------------------

TEST(ColumnarOpsTest, ProjectSharesNoPerRowWork) {
  Table t = MakeMixedTable();
  auto p = Project(t, {"name", "id"});
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->num_rows(), t.num_rows());
  EXPECT_EQ(p->schema().column(0).name, "name");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(p->at(r, 0).Compare(t.at(r, 2)), 0);
    EXPECT_EQ(p->at(r, 1).Compare(t.at(r, 0)), 0);
  }
  EXPECT_EQ(p->stats(1).non_null_count, t.stats(0).non_null_count);
}

TEST(ColumnarOpsTest, OrderByUsesColumnCompare) {
  Table t = MakeMixedTable();
  auto sorted = OrderBy(t, "price");
  ASSERT_TRUE(sorted.ok());
  // NULL first, then ascending doubles.
  EXPECT_TRUE(sorted->at(0, 1).is_null());
  EXPECT_DOUBLE_EQ(sorted->at(1, 1).AsDoubleExact(), -2.25);
  EXPECT_DOUBLE_EQ(sorted->at(3, 1).AsDoubleExact(), 20.0);
}

}  // namespace
}  // namespace pb::db
