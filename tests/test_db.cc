// Unit tests for the relational engine substrate: values, schemas, tables,
// expressions, operators, CSV, and the catalog.

#include <gtest/gtest.h>

#include <sstream>

#include "db/catalog.h"
#include "db/csv.h"
#include "db/expr.h"
#include "db/ops.h"
#include "db/table.h"

namespace pb::db {
namespace {

// ----- Value -----------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDoubleExact(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_GT(Value::String("a").Compare(Value::Null()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("apple").Compare(Value::String("banana")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Double(4.0).ToString(), "4");
  EXPECT_EQ(Value::String("q").ToString(), "q");
}

TEST(ValueTest, SqlLiteralEscapesQuotes) {
  EXPECT_EQ(Value::String("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Int(5).ToSqlLiteral(), "5");
}

TEST(ValueTest, ToDoubleCoercion) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).ToDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Double(4.5).ToDouble(), 4.5);
  EXPECT_FALSE(Value::String("4").ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

// ----- Schema ----------------------------------------------------------------

TEST(SchemaTest, LookupIsCaseInsensitive) {
  Schema s({{"Calories", ValueType::kDouble}, {"name", ValueType::kString}});
  EXPECT_EQ(*s.IndexOf("calories"), 0u);
  EXPECT_EQ(*s.IndexOf("CALORIES"), 0u);
  EXPECT_EQ(*s.IndexOf("Name"), 1u);
  EXPECT_FALSE(s.IndexOf("nope").ok());
  EXPECT_TRUE(s.HasColumn("NAME"));
}

TEST(SchemaTest, RejectsDuplicates) {
  Schema s;
  EXPECT_TRUE(s.AddColumn({"a", ValueType::kInt}).ok());
  EXPECT_EQ(s.AddColumn({"A", ValueType::kInt}).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, EqualityIgnoresCase) {
  Schema a({{"x", ValueType::kInt}});
  Schema b({{"X", ValueType::kInt}});
  Schema c({{"x", ValueType::kDouble}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// ----- Table -----------------------------------------------------------------

Table MakeMeals() {
  Table t("meals", Schema({{"id", ValueType::kInt},
                           {"name", ValueType::kString},
                           {"calories", ValueType::kDouble},
                           {"gluten", ValueType::kString}}));
  auto add = [&](int64_t id, const char* name, double cal, const char* g) {
    EXPECT_TRUE(t.Append({Value::Int(id), Value::String(name),
                          Value::Double(cal), Value::String(g)})
                    .ok());
  };
  add(0, "pasta", 700, "full");
  add(1, "salad", 250, "free");
  add(2, "steak", 900, "free");
  add(3, "soup", 300, "free");
  add(4, "cake", 550, "full");
  return t;
}

TEST(TableTest, AppendChecksArity) {
  Table t("t", Schema({{"a", ValueType::kInt}}));
  EXPECT_EQ(t.Append({Value::Int(1), Value::Int(2)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, AppendChecksTypes) {
  Table t("t", Schema({{"a", ValueType::kInt}}));
  EXPECT_EQ(t.Append({Value::String("x")}).code(), StatusCode::kTypeError);
  EXPECT_TRUE(t.Append({Value::Null()}).ok());  // NULL fits anywhere
}

TEST(TableTest, IntWidensIntoDoubleColumn) {
  Table t("t", Schema({{"a", ValueType::kDouble}}));
  ASSERT_TRUE(t.Append({Value::Int(3)}).ok());
  EXPECT_TRUE(t.at(0, 0).is_double());
  EXPECT_DOUBLE_EQ(t.at(0, 0).AsDoubleExact(), 3.0);
}

TEST(TableTest, StatsTrackMinMaxSumAndNulls) {
  Table t = MakeMeals();
  const ColumnStats& cal = t.stats(2);
  EXPECT_EQ(cal.non_null_count, 5);
  EXPECT_DOUBLE_EQ(*cal.min, 250.0);
  EXPECT_DOUBLE_EQ(*cal.max, 900.0);
  EXPECT_DOUBLE_EQ(cal.sum, 2700.0);
  EXPECT_DOUBLE_EQ(cal.mean(), 540.0);

  Table u("u", Schema({{"x", ValueType::kInt}}));
  ASSERT_TRUE(u.Append({Value::Null()}).ok());
  ASSERT_TRUE(u.Append({Value::Int(2)}).ok());
  EXPECT_EQ(u.stats(0).null_count, 1);
  EXPECT_EQ(u.stats(0).non_null_count, 1);
}

TEST(TableTest, ToStringShowsHeaderAndRows) {
  Table t = MakeMeals();
  std::string s = t.ToString(2);
  EXPECT_NE(s.find("calories"), std::string::npos);
  EXPECT_NE(s.find("pasta"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

// ----- Expr ------------------------------------------------------------------

TEST(ExprTest, ComparisonAndArithmetic) {
  Table t = MakeMeals();
  // calories / 2 + 50 > 400
  ExprPtr e = Binary(
      BinaryOp::kGt,
      Binary(BinaryOp::kAdd,
             Binary(BinaryOp::kDiv, Col("calories"), LitDouble(2)),
             LitDouble(50)),
      LitDouble(400));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_FALSE(*e->Matches(t.row(0)));  // 700/2+50 = 400, 400 > 400 is false

  EXPECT_TRUE(*e->Matches(t.row(2)));   // 900/2+50 = 500 > 400
}

TEST(ExprTest, QualifiedColumnNamesBind) {
  Table t = MakeMeals();
  ExprPtr e = Binary(BinaryOp::kEq, Col("R.gluten"), LitString("free"));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_FALSE(*e->Matches(t.row(0)));
  EXPECT_TRUE(*e->Matches(t.row(1)));
}

TEST(ExprTest, UnboundColumnFails) {
  Table t = MakeMeals();
  ExprPtr e = Col("nonexistent");
  EXPECT_EQ(e->Bind(t.schema()).code(), StatusCode::kNotFound);
}

TEST(ExprTest, BetweenAndNegation) {
  Table t = MakeMeals();
  ExprPtr e = Between(Col("calories"), LitDouble(260), LitDouble(800));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_TRUE(*e->Matches(t.row(0)));   // 700
  EXPECT_FALSE(*e->Matches(t.row(1)));  // 250
  ExprPtr ne = Between(Col("calories"), LitDouble(260), LitDouble(800),
                       /*negated=*/true);
  ASSERT_TRUE(ne->Bind(t.schema()).ok());
  EXPECT_FALSE(*ne->Matches(t.row(0)));
  EXPECT_TRUE(*ne->Matches(t.row(1)));
}

TEST(ExprTest, InList) {
  Table t = MakeMeals();
  ExprPtr e = In(Col("name"),
                 {Value::String("salad"), Value::String("soup")});
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_TRUE(*e->Matches(t.row(1)));
  EXPECT_FALSE(*e->Matches(t.row(0)));
}

TEST(ExprTest, LikePattern) {
  Table t = MakeMeals();
  ExprPtr e = Like(Col("name"), "s%");
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_TRUE(*e->Matches(t.row(1)));   // salad
  EXPECT_TRUE(*e->Matches(t.row(2)));   // steak
  EXPECT_FALSE(*e->Matches(t.row(0)));  // pasta
}

TEST(ExprTest, NullPropagationThreeValuedLogic) {
  Table t("t", Schema({{"x", ValueType::kInt}}));
  ASSERT_TRUE(t.Append({Value::Null()}).ok());
  // NULL > 5 evaluates to NULL, which does not match.
  ExprPtr cmp = Binary(BinaryOp::kGt, Col("x"), LitInt(5));
  ASSERT_TRUE(cmp->Bind(t.schema()).ok());
  EXPECT_FALSE(*cmp->Matches(t.row(0)));
  // NULL OR TRUE == TRUE.
  ExprPtr or_true = Binary(BinaryOp::kOr, cmp->Clone(), LitBool(true));
  ASSERT_TRUE(or_true->Bind(t.schema()).ok());
  EXPECT_TRUE(*or_true->Matches(t.row(0)));
  // NULL AND FALSE == FALSE (not NULL).
  ExprPtr and_false = Binary(BinaryOp::kAnd, cmp->Clone(), LitBool(false));
  ASSERT_TRUE(and_false->Bind(t.schema()).ok());
  Result<Value> v = and_false->Eval(t.row(0));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_bool());
  EXPECT_FALSE(v->AsBool());
  // IS NULL sees through.
  ExprPtr isnull = IsNull(Col("x"));
  ASSERT_TRUE(isnull->Bind(t.schema()).ok());
  EXPECT_TRUE(*isnull->Matches(t.row(0)));
}

TEST(ExprTest, DivisionByZeroIsError) {
  Table t = MakeMeals();
  ExprPtr e = Binary(BinaryOp::kDiv, Col("calories"), LitInt(0));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_FALSE(e->Eval(t.row(0)).ok());
}

TEST(ExprTest, IntegerArithmeticStaysIntegral) {
  Table t("t", Schema({{"a", ValueType::kInt}}));
  ASSERT_TRUE(t.Append({Value::Int(7)}).ok());
  ExprPtr e = Binary(BinaryOp::kMod, Col("a"), LitInt(3));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  Result<Value> v = e->Eval(t.row(0));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_int());
  EXPECT_EQ(v->AsInt(), 1);
}

TEST(ExprTest, TypeErrorOnStringNumberComparison) {
  Table t = MakeMeals();
  ExprPtr e = Binary(BinaryOp::kLt, Col("name"), LitInt(3));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_FALSE(e->Eval(t.row(0)).ok());
}

TEST(ExprTest, ToStringRoundTripReadable) {
  ExprPtr e = Binary(
      BinaryOp::kAnd,
      Binary(BinaryOp::kEq, Col("gluten"), LitString("free")),
      Between(Col("calories"), LitDouble(100), LitDouble(900)));
  EXPECT_EQ(e->ToString(),
            "(gluten = 'free' AND calories BETWEEN 100 AND 900)");
}

TEST(ExprTest, CloneIsDeep) {
  ExprPtr e = Binary(BinaryOp::kGt, Col("calories"), LitDouble(100));
  ExprPtr c = e->Clone();
  Table t = MakeMeals();
  ASSERT_TRUE(c->Bind(t.schema()).ok());
  // Original stays unbound.
  EXPECT_EQ(e->children[0]->column_index, -1);
  EXPECT_GE(c->children[0]->column_index, 0);
}

// ----- Ops -------------------------------------------------------------------

TEST(OpsTest, SelectFiltersRows) {
  Table t = MakeMeals();
  auto r = Select(t, Binary(BinaryOp::kEq, Col("gluten"), LitString("free")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);
}

TEST(OpsTest, SelectNullPredicateKeepsAll) {
  Table t = MakeMeals();
  auto r = Select(t, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 5u);
}

TEST(OpsTest, FilterIndicesMatchesSelect) {
  Table t = MakeMeals();
  ExprPtr pred = Binary(BinaryOp::kGt, Col("calories"), LitDouble(400));
  auto idx = FilterIndices(t, pred);
  ASSERT_TRUE(idx.ok());
  std::vector<size_t> expect = {0, 2, 4};
  EXPECT_EQ(*idx, expect);
}

TEST(OpsTest, ProjectReordersColumns) {
  Table t = MakeMeals();
  auto r = Project(t, {"name", "id"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().num_columns(), 2u);
  EXPECT_EQ(r->schema().column(0).name, "name");
  EXPECT_EQ(r->at(0, 1).AsInt(), 0);
  EXPECT_FALSE(Project(t, {"nope"}).ok());
}

TEST(OpsTest, OrderByAscendingAndDescending) {
  Table t = MakeMeals();
  auto asc = OrderBy(t, "calories", true);
  ASSERT_TRUE(asc.ok());
  EXPECT_DOUBLE_EQ(asc->at(0, 2).AsDoubleExact(), 250.0);
  auto desc = OrderBy(t, "calories", false);
  ASSERT_TRUE(desc.ok());
  EXPECT_DOUBLE_EQ(desc->at(0, 2).AsDoubleExact(), 900.0);
}

TEST(OpsTest, LimitTruncates) {
  Table t = MakeMeals();
  EXPECT_EQ(Limit(t, 2).num_rows(), 2u);
  EXPECT_EQ(Limit(t, 100).num_rows(), 5u);
}

TEST(OpsTest, AggregateCountSumAvgMinMax) {
  Table t = MakeMeals();
  EXPECT_EQ(Aggregate(t, AggFunc::kCount, nullptr)->AsInt(), 5);
  EXPECT_DOUBLE_EQ(*Aggregate(t, AggFunc::kSum, Col("calories"))->ToDouble(),
                   2700.0);
  EXPECT_DOUBLE_EQ(
      Aggregate(t, AggFunc::kAvg, Col("calories"))->AsDoubleExact(), 540.0);
  EXPECT_DOUBLE_EQ(*Aggregate(t, AggFunc::kMin, Col("calories"))->ToDouble(),
                   250.0);
  EXPECT_DOUBLE_EQ(*Aggregate(t, AggFunc::kMax, Col("calories"))->ToDouble(),
                   900.0);
}

TEST(OpsTest, AggregateEmptyInput) {
  Table t("t", Schema({{"x", ValueType::kInt}}));
  EXPECT_EQ(Aggregate(t, AggFunc::kCount, nullptr)->AsInt(), 0);
  EXPECT_TRUE(Aggregate(t, AggFunc::kSum, Col("x"))->is_null());
  EXPECT_TRUE(Aggregate(t, AggFunc::kMax, Col("x"))->is_null());
}

TEST(OpsTest, AggregateSkipsNulls) {
  Table t("t", Schema({{"x", ValueType::kInt}}));
  ASSERT_TRUE(t.Append({Value::Int(5)}).ok());
  ASSERT_TRUE(t.Append({Value::Null()}).ok());
  ASSERT_TRUE(t.Append({Value::Int(7)}).ok());
  EXPECT_EQ(Aggregate(t, AggFunc::kCount, Col("x"))->AsInt(), 2);
  EXPECT_EQ(Aggregate(t, AggFunc::kCount, nullptr)->AsInt(), 3);
  EXPECT_DOUBLE_EQ(*Aggregate(t, AggFunc::kSum, Col("x"))->ToDouble(), 12.0);
  EXPECT_DOUBLE_EQ(
      Aggregate(t, AggFunc::kAvg, Col("x"))->AsDoubleExact(), 6.0);
}

TEST(OpsTest, AggregateRowsWithMultiplicities) {
  Table t = MakeMeals();
  // Rows 1 (250 cal) x2 and 3 (300 cal) x1.
  auto sum = AggregateRows(t, AggFunc::kSum, Col("calories"), {1, 3}, {2, 1});
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum->ToDouble(), 800.0);
  auto cnt = AggregateRows(t, AggFunc::kCount, nullptr, {1, 3}, {2, 1});
  EXPECT_EQ(cnt->AsInt(), 3);
  // MIN ignores multiplicity.
  auto mn = AggregateRows(t, AggFunc::kMin, Col("calories"), {1, 3}, {2, 1});
  EXPECT_DOUBLE_EQ(*mn->ToDouble(), 250.0);
}

TEST(OpsTest, AggregateRowsValidation) {
  Table t = MakeMeals();
  EXPECT_FALSE(AggregateRows(t, AggFunc::kSum, Col("calories"), {1}, {}).ok());
  EXPECT_FALSE(
      AggregateRows(t, AggFunc::kSum, Col("calories"), {99}, {1}).ok());
  EXPECT_FALSE(
      AggregateRows(t, AggFunc::kSum, Col("calories"), {1}, {-1}).ok());
}

TEST(OpsTest, GroupByCountsPerGroup) {
  Table t = MakeMeals();
  auto r = GroupBy(t, "gluten",
                   {{AggFunc::kCount, nullptr, "n"},
                    {AggFunc::kSum, Col("calories"), "total"}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 2u);
  // Deterministic order: 'free' < 'full'.
  EXPECT_EQ(r->at(0, 0).AsString(), "free");
  EXPECT_EQ(r->at(0, 1).AsInt(), 3);
  EXPECT_DOUBLE_EQ(*r->at(0, 2).ToDouble(), 1450.0);
  EXPECT_EQ(r->at(1, 0).AsString(), "full");
  EXPECT_EQ(r->at(1, 1).AsInt(), 2);
}

TEST(OpsTest, CrossJoinCartesianSize) {
  Table t = MakeMeals();
  auto r = CrossJoin(t, t, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 25u);
  // Collided names get prefixed.
  EXPECT_TRUE(r->schema().HasColumn("meals.id"));
}

TEST(OpsTest, CrossJoinThetaPredicate) {
  Table t = MakeMeals();
  // Pairs whose calories sum below 600. Column names come from the join's
  // actual output schema (self-joins suffix the right side).
  auto joined = CrossJoin(t, t, nullptr);
  ASSERT_TRUE(joined.ok());
  // Find the two calorie columns by position instead of guessing names.
  std::string left_cal = joined->schema().column(2).name;
  std::string right_cal = joined->schema().column(6).name;
  ExprPtr pred2 = Binary(
      BinaryOp::kLt,
      Binary(BinaryOp::kAdd, Col(left_cal), Col(right_cal)),
      LitDouble(600));
  auto r = CrossJoin(t, t, pred2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // (250,250)=500, (250,300)=550, (300,250)=550; (300,300)=600 misses "<".
  EXPECT_EQ(r->num_rows(), 3u);
}

// ----- CSV -------------------------------------------------------------------

TEST(CsvTest, ReadWithTypeInference) {
  std::istringstream in("id,name,score\n1,alpha,2.5\n2,beta,3\n3,gamma,\n");
  auto t = ReadCsv(in, "scores");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->schema().column(0).type, ValueType::kInt);
  EXPECT_EQ(t->schema().column(1).type, ValueType::kString);
  EXPECT_EQ(t->schema().column(2).type, ValueType::kDouble);
  EXPECT_TRUE(t->at(2, 2).is_null());  // empty cell
}

TEST(CsvTest, QuotedFieldsWithSeparatorsAndEscapes) {
  std::istringstream in(
      "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  auto t = ReadCsv(in, "q");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->at(0, 0).AsString(), "x,y");
  EXPECT_EQ(t->at(0, 1).AsString(), "he said \"hi\"");
}

TEST(CsvTest, RaggedRowFails) {
  std::istringstream in("a,b\n1,2\n3\n");
  EXPECT_EQ(ReadCsv(in, "bad").status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RoundTrip) {
  Table t = MakeMeals();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, "meals");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.schema().num_columns(); ++c) {
      EXPECT_EQ(back->at(r, c).Compare(t.at(r, c)), 0)
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(CsvTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/file.csv", "t").status().code(),
            StatusCode::kNotFound);
}

// ----- Catalog ---------------------------------------------------------------

TEST(CatalogTest, RegisterGetDrop) {
  Catalog c;
  ASSERT_TRUE(c.Register(MakeMeals()).ok());
  EXPECT_TRUE(c.Has("MEALS"));  // case-insensitive
  auto t = c.Get("meals");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 5u);
  EXPECT_EQ(c.Register(MakeMeals()).code(), StatusCode::kAlreadyExists);
  c.RegisterOrReplace(MakeMeals());
  ASSERT_TRUE(c.Drop("meals").ok());
  EXPECT_FALSE(c.Has("meals"));
  EXPECT_EQ(c.Drop("meals").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog c;
  Table a("zeta", Schema({{"x", ValueType::kInt}}));
  Table b("alpha", Schema({{"x", ValueType::kInt}}));
  ASSERT_TRUE(c.Register(std::move(a)).ok());
  ASSERT_TRUE(c.Register(std::move(b)).ok());
  auto names = c.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace pb::db
