// Tests for the EXPLAIN facility (the §5 "optimizing PaQL queries"
// direction): the plan must mirror the Auto policy's real decisions.

#include <gtest/gtest.h>

#include "core/explain.h"
#include "datagen/recipes.h"
#include "db/catalog.h"

namespace pb::core {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.RegisterOrReplace(datagen::GenerateRecipes(100, 51));
  }
  db::Catalog catalog_;
};

TEST_F(ExplainTest, LinearOptimizationChoosesIlp) {
  auto plan = ExplainQuery(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 3 AND SUM(calories) <= 2000 "
      "MAXIMIZE SUM(protein)",
      catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->chosen_strategy, Strategy::kIlpSolver);
  EXPECT_TRUE(plan->ilp_translatable);
  EXPECT_GT(plan->model_variables, 0);
  EXPECT_LT(plan->candidates, plan->table_rows);  // base filter applied
  EXPECT_GT(plan->base_selectivity, 0.2);
  EXPECT_LT(plan->base_selectivity, 0.8);
}

TEST_F(ExplainTest, DisjunctiveChoosesSearch) {
  auto plan = ExplainQuery(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 2 OR COUNT(*) = 4",
      catalog_);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->ilp_translatable);
  EXPECT_EQ(plan->chosen_strategy, Strategy::kLocalSearch);
  EXPECT_NE(plan->rationale.find("heuristic"), std::string::npos);
}

TEST_F(ExplainTest, SmallDisjunctiveChoosesBruteForce) {
  db::Catalog tiny;
  tiny.RegisterOrReplace(datagen::GenerateRecipes(10, 5));
  auto plan = ExplainQuery(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 2 OR COUNT(*) = 4",
      tiny);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen_strategy, Strategy::kBruteForce);
}

TEST_F(ExplainTest, FeasibilityChoosesLocalSearchFirst) {
  auto plan = ExplainQuery(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 3 AND SUM(calories) <= 3000",
      catalog_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen_strategy, Strategy::kLocalSearch);
  EXPECT_FALSE(plan->has_objective);
}

TEST_F(ExplainTest, InfeasibilityProvedWithoutSearch) {
  auto plan = ExplainQuery(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) <= 2 AND SUM(calories) >= 1000000",
      catalog_);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->proven_infeasible);
  EXPECT_NE(plan->ToString().find("infeasible"), std::string::npos);
}

TEST_F(ExplainTest, ForcedStrategyReported) {
  EvaluationOptions opts;
  opts.strategy = Strategy::kBruteForce;
  auto plan = ExplainQuery(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 2 "
      "MAXIMIZE SUM(protein)",
      catalog_, opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen_strategy, Strategy::kBruteForce);
  EXPECT_EQ(plan->rationale, "forced by options");
}

TEST_F(ExplainTest, PlanTextMentionsKeyFacts) {
  auto plan = ExplainQuery(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 1000 AND 2000 "
      "MAXIMIZE SUM(protein)",
      catalog_);
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  EXPECT_NE(text.find("selectivity"), std::string::npos);
  EXPECT_NE(text.find("cardinality bounds"), std::string::npos);
  EXPECT_NE(text.find("search space"), std::string::npos);
  EXPECT_NE(text.find("IlpSolver"), std::string::npos);
}

TEST_F(ExplainTest, PlanAgreesWithActualEvaluation) {
  // The plan's predicted strategy matches what Evaluate uses, modulo the
  // documented fallback chain: a failed LocalSearch falls back to a bounded
  // BruteForce pass (evaluator.cc), which EXPLAIN cannot predict without
  // running the heuristic.
  const char* queries[] = {
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3 "
      "MAXIMIZE SUM(protein)",
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 2 OR "
      "COUNT(*) = 3 MAXIMIZE SUM(protein)",
  };
  for (const char* q : queries) {
    auto plan = ExplainQuery(q, catalog_);
    ASSERT_TRUE(plan.ok()) << q;
    QueryEvaluator ev(&catalog_);
    auto r = ev.Evaluate(q);
    ASSERT_TRUE(r.ok()) << q;
    bool match = plan->chosen_strategy == r->strategy_used;
    bool ls_fellback = plan->chosen_strategy == Strategy::kLocalSearch &&
                       r->strategy_used == Strategy::kBruteForce;
    EXPECT_TRUE(match || ls_fellback) << q;
  }
}

}  // namespace
}  // namespace pb::core
