// ComputeBudget / CancelToken / Deadline — the budget primitives the
// Engine facade threads through every solve — plus the deprecated-alias
// resolution rule and the solver-level cancellation contract: a cancelled
// solve stops like a limit stop (partial, well-formed, flagged), never
// with a corrupted result.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/random.h"
#include "solver/milp.h"

namespace pb {
namespace {

TEST(ComputeBudgetTest, ResolvesAliasAsMax) {
  EXPECT_EQ(ResolveThreads(1, 1), 1);  // both at their defaults
  EXPECT_EQ(ResolveThreads(4, 1), 4);  // new field set
  EXPECT_EQ(ResolveThreads(1, 4), 4);  // deprecated alias set
  EXPECT_EQ(ResolveThreads(2, 8), 8);  // both set: max wins
  EXPECT_EQ(ResolveThreads(0, 0), 1);  // degenerate values clamp to 1
  EXPECT_EQ(ResolveThreads(-3, 0), 1);
}

TEST(CancelTokenTest, DefaultTokenIsInert) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancel_requested());
  token.RequestCancel();  // no-op, must not crash
  EXPECT_FALSE(token.cancel_requested());
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken token = CancelToken::Create();
  CancelToken copy = token;
  EXPECT_TRUE(copy.valid());
  EXPECT_FALSE(copy.cancel_requested());
  token.RequestCancel();
  EXPECT_TRUE(copy.cancel_requested());
}

TEST(DeadlineTest, DefaultHasNoDeadline) {
  Deadline d;
  EXPECT_FALSE(d.has_deadline());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.SecondsRemaining(), 1e8);
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline d = Deadline::AfterSeconds(0.0);
  EXPECT_TRUE(d.has_deadline());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.SecondsRemaining(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineCountsDown) {
  Deadline d = Deadline::AfterSeconds(3600.0);
  EXPECT_TRUE(d.has_deadline());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.SecondsRemaining(), 3500.0);
  EXPECT_LE(d.SecondsRemaining(), 3600.0);
}

// ---------------------------------------------------------------- solver

/// A package-style ILP with real branching work (tight COUNT + SUM rows).
solver::LpModel TightPackageIlp(int n, uint64_t seed) {
  Rng rng(seed);
  solver::LpModel m;
  std::vector<solver::LinearTerm> count, weight;
  for (int j = 0; j < n; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), true);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
  }
  m.AddConstraint("count", count, 8, 8);
  m.AddConstraint("weight", weight, 3600, 3700);
  m.SetSense(solver::ObjectiveSense::kMaximize);
  return m;
}

TEST(MilpBudgetTest, ComputeThreadsAliasEquivalence) {
  solver::LpModel model = TightPackageIlp(120, 11);

  solver::MilpOptions serial;
  auto base = solver::SolveMilp(model, serial);
  ASSERT_TRUE(base.ok());

  solver::MilpOptions via_alias;
  via_alias.num_threads = 2;
  auto alias = solver::SolveMilp(model, via_alias);
  ASSERT_TRUE(alias.ok());

  solver::MilpOptions via_budget;
  via_budget.compute.threads = 2;
  auto budget = solver::SolveMilp(model, via_budget);
  ASSERT_TRUE(budget.ok());

  // Old knob, new knob, and serial all commit the identical tree.
  EXPECT_EQ(alias->x, base->x);
  EXPECT_EQ(budget->x, base->x);
  EXPECT_EQ(alias->nodes, base->nodes);
  EXPECT_EQ(budget->nodes, base->nodes);
  EXPECT_EQ(budget->lp_iterations, base->lp_iterations);
}

TEST(MilpBudgetTest, PreCancelledSolveStopsBeforeAnyNode) {
  solver::LpModel model = TightPackageIlp(120, 11);
  solver::MilpOptions options;
  options.cancel = CancelToken::Create();
  options.cancel.RequestCancel();
  auto r = solver::SolveMilp(model, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cancelled);
  EXPECT_EQ(r->status, solver::MilpStatus::kNoSolution);
  EXPECT_EQ(r->nodes, 0);
}

TEST(MilpBudgetTest, MidSolveCancelReturnsWellFormedPartialResult) {
  solver::LpModel model = TightPackageIlp(400, 17);
  solver::MilpOptions options;
  options.cancel = CancelToken::Create();
  options.time_limit_s = 300.0;

  Result<solver::MilpResult> result = Status::Internal("solve never ran");
  std::thread solver_thread([&] { result = SolveMilp(model, options); });
  // Let some nodes commit, then pull the plug. If the solve finishes
  // first the assertions below still hold (cancelled stays false and the
  // result is complete) — the test never flakes on timing, it only loses
  // coverage on a too-fast machine.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  options.cancel.RequestCancel();
  solver_thread.join();

  ASSERT_TRUE(result.ok());
  if (result->cancelled) {
    EXPECT_TRUE(result->status == solver::MilpStatus::kFeasible ||
                result->status == solver::MilpStatus::kNoSolution);
    if (result->has_solution()) {
      // A partial incumbent must still be a genuinely feasible point.
      EXPECT_TRUE(model.IsFeasible(result->x, 1e-6));
    }
  } else {
    EXPECT_EQ(result->status, solver::MilpStatus::kOptimal);
  }
}

}  // namespace
}  // namespace pb
