// pb::Engine — the re-entrant facade. Covers the PR's acceptance points:
// concurrent sessions over one Engine return bit-identical packages for
// repeated queries (counter-verified result-cache hits), structurally
// identical models reuse warm-start state, budgets/deadlines/cancellation
// produce structured partial responses, and catalog mutations invalidate
// the result cache.
//
// The concurrency suites honor PB_TEST_THREADS (the TSan CI lane runs them
// with several client threads to shake out data races in the shared
// caches and the lazily built LpModel state).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "engine/engine.h"

namespace pb::engine {
namespace {

constexpr char kOptQuery[] =
    "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3 AND "
    "SUM(calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(protein)";

std::unique_ptr<Engine> MakeRecipesEngine(size_t rows = 200) {
  EngineOptions options;
  options.num_threads = 2;
  auto engine = std::make_unique<Engine>(options);
  auto generated = engine->GenerateDataset("recipes", rows, 42);
  EXPECT_TRUE(generated.ok()) << generated.status().ToString();
  return engine;
}

TEST(EngineTest, ExecutesAnOptimizationQuery) {
  auto engine = MakeRecipesEngine();
  QueryResponse r = engine->ExecuteQuery(0, kOptQuery);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.strategy, "IlpSolver");
  EXPECT_EQ(r.table, "recipes");
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_TRUE(r.has_objective);
  EXPECT_GT(r.objective, 0.0);
  EXPECT_EQ(r.package.TotalCount(), 3);
  EXPECT_FALSE(r.result_cache_hit);
  EXPECT_GT(r.nodes, 0);
  EXPECT_NE(r.model_signature, 0u);
}

TEST(EngineTest, RepeatHitsResultCacheBitIdentically) {
  auto engine = MakeRecipesEngine();
  QueryResponse first = engine->ExecuteQuery(0, kOptQuery);
  ASSERT_TRUE(first.ok());
  QueryResponse second = engine->ExecuteQuery(0, kOptQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.result_cache_hit);
  EXPECT_EQ(second.package, first.package);
  EXPECT_EQ(second.objective, first.objective);
  EXPECT_EQ(engine->stats().result_cache_hits, 1);
}

TEST(EngineTest, StructurallyIdenticalQueriesWarmStart) {
  auto engine = MakeRecipesEngine();
  // Different window bounds, same constraint/objective structure: distinct
  // result-cache keys but one StructuralSignature.
  QueryResponse a = engine->ExecuteQuery(
      0,
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3 AND "
      "SUM(calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(protein)");
  QueryResponse b = engine->ExecuteQuery(
      0,
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3 AND "
      "SUM(calories) BETWEEN 2100 AND 2600 MAXIMIZE SUM(protein)");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.model_signature, b.model_signature);
  EXPECT_FALSE(a.warm_start_hit);
  EXPECT_TRUE(b.warm_start_hit);
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.warm_cache_hits, 1);
  EXPECT_EQ(stats.warm_cache_misses, 1);
}

TEST(EngineTest, CatalogMutationInvalidatesResultCache) {
  auto engine = MakeRecipesEngine();
  QueryResponse first = engine->ExecuteQuery(0, kOptQuery);
  ASSERT_TRUE(first.ok());
  // Same table name, different rows: the cached package must not replay.
  ASSERT_TRUE(engine->GenerateDataset("recipes", 200, 7).ok());
  QueryResponse second = engine->ExecuteQuery(0, kOptQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.result_cache_hit);
}

TEST(EngineTest, NonTranslatableQueryDelegatesToSearch) {
  auto engine = MakeRecipesEngine(20);
  // OR in SUCH THAT is not ILP-translatable; the hybrid search answers.
  QueryResponse r = engine->ExecuteQuery(
      0,
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 2 OR "
      "COUNT(*) = 3");
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_NE(r.strategy, "IlpSolver");
  EXPECT_GE(r.package.TotalCount(), 2);
}

TEST(EngineTest, UnknownSessionIsNotFound) {
  auto engine = MakeRecipesEngine(20);
  QueryResponse r = engine->ExecuteQuery(99, kOptQuery);
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(engine->CancelSession(99).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine->CloseSession(99).code(), StatusCode::kNotFound);
}

TEST(EngineTest, SessionLifecycle) {
  auto engine = MakeRecipesEngine(50);
  const uint64_t session = engine->OpenSession();
  EXPECT_GT(session, 0u);
  QueryResponse r = engine->ExecuteQuery(session, kOptQuery);
  EXPECT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_TRUE(engine->CancelSession(session).ok());  // idle: no-op
  EXPECT_TRUE(engine->CloseSession(session).ok());
  EXPECT_EQ(engine->CloseSession(session).code(), StatusCode::kNotFound);
}

TEST(EngineTest, ExpiredDeadlineReturnsResourceExhausted) {
  auto engine = MakeRecipesEngine();
  QueryBudget budget;
  budget.time_limit_s = 1e-9;  // expires before the solver's first node
  QueryResponse r = engine->ExecuteQuery(0, kOptQuery, budget);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(r.package.empty());
}

TEST(EngineTest, PreCancelledQueryReturnsStructuredPartialStatus) {
  auto engine = MakeRecipesEngine();
  QueryBudget budget;
  budget.cancel = CancelToken::Create();
  budget.cancel.RequestCancel();
  QueryResponse r = engine->ExecuteQuery(0, kOptQuery, budget);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(r.package.empty());
}

TEST(EngineTest, CancelSessionInterruptsAnInFlightQuery) {
  EngineOptions options;
  options.num_threads = 2;
  auto engine = std::make_unique<Engine>(options);
  // Large enough that the solve runs for many seconds if uninterrupted.
  ASSERT_TRUE(engine->GenerateDataset("stocks", 4000, 3).ok());
  const uint64_t session = engine->OpenSession();

  std::atomic<bool> started{false};
  QueryResponse r;
  std::thread client([&] {
    started.store(true);
    r = engine->ExecuteQuery(
        session,
        "SELECT PACKAGE(S) FROM stocks S SUCH THAT COUNT(*) = 12 AND "
        "SUM(price) BETWEEN 5000 AND 5010 MAXIMIZE SUM(expected_gain)");
  });
  while (!started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(engine->CancelSession(session).ok());
  client.join();

  // Cancelled (the expected path) or — on an improbably fast solve —
  // complete; either way the response is well-formed, never corrupted.
  if (r.cancelled) {
    EXPECT_TRUE(!r.ok() || !r.proven_optimal);
    if (r.ok()) {
      EXPECT_FALSE(r.package.empty());  // partial incumbent, still valid
    } else {
      EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
    }
  } else {
    EXPECT_TRUE(r.ok() || !r.status.message().empty());
  }
}

TEST(EngineTest, ConcurrentSessionsRepeatQueriesBitIdentically) {
  auto engine = MakeRecipesEngine(150);
  const int num_clients = std::max(2, EnvInt("PB_TEST_THREADS", 4));
  const int rounds = 4;
  const std::vector<std::string> queries = {
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3 AND "
      "SUM(calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(protein)",
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 2 "
      "MINIMIZE SUM(calories)",
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) BETWEEN 2 AND "
      "4 AND SUM(protein) >= 100 MINIMIZE SUM(fat)",
  };

  struct Observation {
    std::string fingerprint;
    double objective = 0.0;
  };
  std::vector<std::vector<std::vector<Observation>>> seen(
      num_clients,
      std::vector<std::vector<Observation>>(queries.size()));
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      const uint64_t session = engine->OpenSession();
      for (int round = 0; round < rounds; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          QueryResponse r = engine->ExecuteQuery(session, queries[q]);
          if (!r.ok()) {
            failures.fetch_add(1);
            continue;
          }
          seen[c][q].push_back(
              {r.package.Fingerprint(), r.objective});
        }
      }
      EXPECT_TRUE(engine->CloseSession(session).ok());
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  // Every observation of a query, across every client and round, must be
  // the same package: the result cache (and, under it, the deterministic
  // solver) guarantees bit-identical repeats.
  for (size_t q = 0; q < queries.size(); ++q) {
    std::set<std::string> fingerprints;
    std::set<double> objectives;
    for (int c = 0; c < num_clients; ++c) {
      for (const Observation& obs : seen[c][q]) {
        fingerprints.insert(obs.fingerprint);
        objectives.insert(obs.objective);
      }
    }
    EXPECT_EQ(fingerprints.size(), 1u) << "query " << q;
    EXPECT_EQ(objectives.size(), 1u) << "query " << q;
  }
  // The counters prove the cache carried the repeats: at most one miss
  // per query (plus races where two clients solve the same query at
  // once), and the vast majority of calls were hits.
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.queries,
            static_cast<int64_t>(num_clients) * rounds * queries.size());
  EXPECT_GT(stats.result_cache_hits, 0);
}

TEST(EngineTest, SubmitQueryRunsOnThePoolAndHonorsAdmission) {
  EngineOptions options;
  options.num_threads = 2;
  options.max_pending_queries = 0;  // reject everything: deterministic
  Engine rejecting(options);
  ASSERT_TRUE(rejecting.GenerateDataset("recipes", 30, 42).ok());
  EXPECT_FALSE(rejecting.SubmitQuery(0, kOptQuery, {},
                                     [](QueryResponse) {}));
  EXPECT_EQ(rejecting.stats().overload_rejections, 1);

  auto engine = MakeRecipesEngine(50);
  std::atomic<bool> done{false};
  QueryResponse async;
  ASSERT_TRUE(engine->SubmitQuery(0, kOptQuery, {}, [&](QueryResponse r) {
    async = std::move(r);
    done.store(true, std::memory_order_release);
  }));
  engine->pool()->Wait();
  ASSERT_TRUE(done.load(std::memory_order_acquire));
  EXPECT_TRUE(async.ok()) << async.status.ToString();
}

TEST(EngineTest, FacadeWrappersCoverTheShellSurface) {
  auto engine = MakeRecipesEngine(40);
  EXPECT_EQ(engine->TableNames(), std::vector<std::string>{"recipes"});
  auto tables = engine->Tables();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].rows, 40u);

  auto plan = engine->Explain(kOptQuery);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->ilp_translatable);

  auto packages = engine->Enumerate(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 2 "
      "MAXIMIZE SUM(protein) LIMIT 3",
      3, /*diverse=*/false);
  ASSERT_TRUE(packages.ok()) << packages.status().ToString();
  EXPECT_GE(packages->size(), 1u);
  EXPECT_LE(packages->size(), 3u);

  auto table = engine->BaseTable(kOptQuery);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table, "recipes");
  auto objective = engine->EvaluateObjective(kOptQuery, (*packages)[0]);
  EXPECT_TRUE(objective.ok());
}

}  // namespace
}  // namespace pb::engine
