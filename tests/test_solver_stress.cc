// Stress and edge-path tests for the solver substrate: degenerate and
// ill-conditioned models, iteration/refactorization paths, ranged-row
// corner cases, and larger randomized sweeps than test_solver.cc runs.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/random.h"
#include "solver/milp.h"
#include "solver/simplex.h"

namespace pb::solver {
namespace {

TEST(SimplexStressTest, ManyRedundantEqualities) {
  // The same equality repeated: the basis gets degenerate rows; the
  // refactorization path must keep the inverse healthy.
  LpModel m;
  int x = m.AddVariable("x", 0, 10, 1, false);
  int y = m.AddVariable("y", 0, 10, 1, false);
  for (int i = 0; i < 12; ++i) {
    m.AddConstraint("eq" + std::to_string(i), {{x, 1.0}, {y, 1.0}}, 6, 6);
  }
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 6.0, 1e-7);
}

TEST(SimplexStressTest, WideRangeOfCoefficientMagnitudes) {
  // Coefficients spanning 1e-4 .. 1e4 (recipes' calories vs. ratings).
  LpModel m;
  int x = m.AddVariable("x", 0, 1e6, 1e-4, false);
  int y = m.AddVariable("y", 0, 1e6, 1e4, false);
  m.AddConstraint("mix", {{x, 1e-4}, {y, 1e4}}, -kInfinity, 1e4);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  // Optimum: spend the row on y (1e4 per unit of activity beats 1e-4...
  // both give objective = activity; any split attains 1e4).
  EXPECT_NEAR(r->objective, 1e4, 1.0);
}

TEST(SimplexStressTest, IterationLimitSurfacesHonestly) {
  pb::Rng rng(21);
  LpModel m;
  std::vector<LinearTerm> row;
  for (int j = 0; j < 200; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(0, 1), false);
  }
  for (int i = 0; i < 20; ++i) {
    std::vector<LinearTerm> terms;
    for (int j = 0; j < 200; ++j) {
      terms.push_back({j, rng.UniformReal(-1, 1)});
    }
    m.AddConstraint("r" + std::to_string(i), terms, -5, 5);
  }
  m.SetSense(ObjectiveSense::kMaximize);
  SimplexOptions opts;
  opts.max_iterations = 3;  // starved
  auto r = SolveLp(m, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, LpStatus::kIterationLimit);
}

TEST(SimplexStressTest, EqualityAtVariableBound) {
  // x must sit exactly at its upper bound to satisfy the row.
  LpModel m;
  int x = m.AddVariable("x", 0, 4, -1, false);
  m.AddConstraint("pin", {{x, 1.0}}, 4, 4);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  EXPECT_NEAR(r->x[0], 4.0, 1e-9);
}

TEST(SimplexStressTest, InfeasibleByConflictingRows) {
  LpModel m;
  int x = m.AddVariable("x", -kInfinity, kInfinity, 0, false);
  int y = m.AddVariable("y", -kInfinity, kInfinity, 0, false);
  m.AddConstraint("a", {{x, 1.0}, {y, 1.0}}, 10, kInfinity);
  m.AddConstraint("b", {{x, 1.0}, {y, 1.0}}, -kInfinity, 5);
  auto r = SolveLp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, LpStatus::kInfeasible);
}

TEST(SimplexStressTest, LargeRandomFeasibleSweep) {
  // 30 random LPs with a known feasible point: never infeasible, optimal
  // objective never worse than the known point.
  pb::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    int n = static_cast<int>(rng.UniformInt(5, 40));
    int rows = static_cast<int>(rng.UniformInt(1, 8));
    LpModel m;
    std::vector<double> feasible(n);
    for (int j = 0; j < n; ++j) {
      feasible[j] = rng.UniformReal(0, 2);
      m.AddVariable("x" + std::to_string(j), 0, 3,
                    rng.UniformReal(-2, 2), false);
    }
    for (int i = 0; i < rows; ++i) {
      std::vector<LinearTerm> terms;
      double activity = 0;
      for (int j = 0; j < n; ++j) {
        double c = rng.UniformReal(-1, 1);
        terms.push_back({j, c});
        activity += c * feasible[j];
      }
      // A window around the known point's activity.
      m.AddConstraint("r" + std::to_string(i), terms,
                      activity - rng.UniformReal(0, 1),
                      activity + rng.UniformReal(0, 1));
    }
    m.SetSense(ObjectiveSense::kMaximize);
    auto r = SolveLp(m);
    ASSERT_TRUE(r.ok()) << trial;
    ASSERT_EQ(r->status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_GE(r->objective, m.ObjectiveValue(feasible) - 1e-6)
        << "trial " << trial;
    EXPECT_TRUE(m.IsFeasible(r->x, 1e-5)) << "trial " << trial;
  }
}

TEST(MilpStressTest, DeepBranchingStillExact) {
  // An interval-cover model that forces real branching: pick integers
  // x_j in [0,2] with pairwise-coupling rows; verified by exhaustion.
  pb::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 6;
    LpModel m;
    for (int j = 0; j < n; ++j) {
      m.AddVariable("x" + std::to_string(j), 0, 2,
                    static_cast<double>(rng.UniformInt(-3, 5)), true);
    }
    for (int i = 0; i + 1 < n; i += 2) {
      m.AddConstraint("pair" + std::to_string(i),
                      {{i, 1.0}, {i + 1, 1.0}},
                      1, 3);
    }
    m.SetSense(ObjectiveSense::kMaximize);
    // Exhaustive oracle over 3^6 = 729 points.
    double best = -1e18;
    std::vector<double> x(n);
    std::function<void(int)> rec = [&](int j) {
      if (j == n) {
        if (m.IsFeasible(x, 1e-9)) best = std::max(best, m.ObjectiveValue(x));
        return;
      }
      for (int v = 0; v <= 2; ++v) {
        x[j] = v;
        rec(j + 1);
      }
    };
    rec(0);
    auto r = SolveMilp(m);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->status, MilpStatus::kOptimal) << trial;
    EXPECT_NEAR(r->objective, best, 1e-6) << trial;
  }
}

TEST(MilpStressTest, TimeLimitReturnsIncumbentWhenFound) {
  // Large correlated knapsack with a tiny time budget: the dive heuristic
  // should still deliver a feasible incumbent.
  pb::Rng rng(41);
  LpModel m;
  std::vector<LinearTerm> cap;
  double total = 0;
  for (int j = 0; j < 400; ++j) {
    double w = rng.UniformReal(1, 20);
    m.AddVariable("x" + std::to_string(j), 0, 1, w + rng.UniformReal(0, 1),
                  true);
    cap.push_back({j, w});
    total += w;
  }
  m.AddConstraint("cap", cap, -kInfinity, total / 3);
  m.SetSense(ObjectiveSense::kMaximize);
  MilpOptions opts;
  opts.time_limit_s = 0.05;
  auto r = SolveMilp(m, opts);
  ASSERT_TRUE(r.ok());
  if (r->has_solution()) {
    EXPECT_TRUE(m.IsFeasible(r->x, 1e-6));
    // The bound reported must dominate the incumbent.
    EXPECT_GE(r->best_bound, r->objective - 1e-6);
  }
}

TEST(MilpStressTest, MixedIntegerContinuous) {
  // Continuous y rides along integer x: max 2x + y, y <= 0.5, x + y <= 3.2,
  // x integer in [0,5] -> x = 2 (2.7 would violate int), wait:
  // x + y <= 3.2 with y <= 0.5: best x = 3 (3 + 0.2), obj = 6.2.
  LpModel m;
  int x = m.AddVariable("x", 0, 5, 2, true);
  int y = m.AddVariable("y", 0, 0.5, 1, false);
  m.AddConstraint("cap", {{x, 1.0}, {y, 1.0}}, -kInfinity, 3.2);
  m.SetSense(ObjectiveSense::kMaximize);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, MilpStatus::kOptimal);
  EXPECT_NEAR(r->x[0], 3.0, 1e-6);
  EXPECT_NEAR(r->x[1], 0.2, 1e-6);
  EXPECT_NEAR(r->objective, 6.2, 1e-6);
}

TEST(MilpStressTest, NegativeBoundsInteger) {
  // Integer variable spanning negative range: min x s.t. x >= -2.5.
  LpModel m;
  int x = m.AddVariable("x", -10, 10, 1, true);
  m.AddConstraint("floor", {{x, 1.0}}, -2.5, kInfinity);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, MilpStatus::kOptimal);
  EXPECT_NEAR(r->x[0], -2.0, 1e-9);
}

TEST(MilpStressTest, AllVariablesFixedByBounds) {
  LpModel m;
  m.AddVariable("x", 2, 2, 5, true);
  m.AddVariable("y", -1, -1, 1, true);
  m.AddConstraint("check", {{0, 1.0}, {1, 1.0}}, 1, 1);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, MilpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 9.0, 1e-9);
}

TEST(MilpStressTest, BlandPricingSolvesEverythingDantzigDoes) {
  pb::Rng rng(53);
  for (int trial = 0; trial < 15; ++trial) {
    LpModel m;
    int n = static_cast<int>(rng.UniformInt(3, 10));
    std::vector<LinearTerm> row;
    for (int j = 0; j < n; ++j) {
      m.AddVariable("x" + std::to_string(j), 0, 2,
                    static_cast<double>(rng.UniformInt(-3, 3)), true);
      row.push_back({j, static_cast<double>(rng.UniformInt(1, 4))});
    }
    m.AddConstraint("cap", row, 2, 3 * n);
    m.SetSense(ObjectiveSense::kMaximize);
    MilpOptions dantzig;
    MilpOptions bland;
    bland.lp.always_bland = true;
    auto a = SolveMilp(m, dantzig);
    auto b = SolveMilp(m, bland);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->status, b->status) << trial;
    if (a->status == MilpStatus::kOptimal) {
      EXPECT_NEAR(a->objective, b->objective, 1e-6) << trial;
    }
  }
}

}  // namespace
}  // namespace pb::solver
