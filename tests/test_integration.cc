// Whole-pipeline integration tests: CSV round trips through the catalog,
// the demo scenarios end to end, and a parameterized query-feature matrix
// that pushes every PaQL feature through parse -> analyze -> evaluate ->
// validate on one shared dataset.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/evaluator.h"
#include "core/explain.h"
#include "datagen/recipes.h"
#include "datagen/stocks.h"
#include "datagen/travel.h"
#include "db/catalog.h"
#include "db/csv.h"
#include "paql/analyzer.h"
#include "ui/template.h"

namespace pb {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.RegisterOrReplace(datagen::GenerateRecipes(150, 61));
    catalog_.RegisterOrReplace(datagen::GenerateTravelItems(200, 62));
    catalog_.RegisterOrReplace(datagen::GenerateStocks(200, 63));
  }
  db::Catalog catalog_;
};

TEST_F(IntegrationTest, CsvDiskRoundTripThenQuery) {
  // Export the recipes to disk, reload under a new name, and query the
  // reloaded copy — the workflow of a user bringing their own data.
  std::string path = ::testing::TempDir() + "/pb_recipes_rt.csv";
  const db::Table& original = **catalog_.Get("recipes");
  ASSERT_TRUE(db::WriteCsvFile(original, path).ok());
  auto reloaded = db::ReadCsvFile(path, "recipes2");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->num_rows(), original.num_rows());
  catalog_.RegisterOrReplace(std::move(reloaded).value());

  core::QueryEvaluator ev(&catalog_);
  auto a = ev.Evaluate(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3 "
      "MAXIMIZE SUM(protein)");
  auto b = ev.Evaluate(
      "SELECT PACKAGE(R) FROM recipes2 R SUCH THAT COUNT(*) = 3 "
      "MAXIMIZE SUM(protein)");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_NEAR(a->objective, b->objective, 1e-6);
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, PackageExportedAsCsv) {
  core::QueryEvaluator ev(&catalog_);
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 4 "
      "MINIMIZE SUM(cost)",
      catalog_);
  ASSERT_TRUE(aq.ok());
  auto r = ev.Evaluate(*aq);
  ASSERT_TRUE(r.ok());
  db::Table pkg = core::MaterializePackage(*aq->table, r->package, "answer");
  std::string path = ::testing::TempDir() + "/pb_package.csv";
  ASSERT_TRUE(db::WriteCsvFile(pkg, path).ok());
  auto back = db::ReadCsvFile(path, "answer");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 4u);
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, AllThreeIntroScenariosSolve) {
  core::QueryEvaluator ev(&catalog_);
  // Meal planner.
  auto meals = ev.Evaluate(
      "SELECT PACKAGE(R) FROM recipes R WHERE R.gluten = 'free' "
      "SUCH THAT COUNT(*) = 3 AND SUM(R.calories) BETWEEN 1500 AND 3000 "
      "MAXIMIZE SUM(R.protein)");
  ASSERT_TRUE(meals.ok()) << meals.status().ToString();
  // Vacation planner (disjunctive form -> search fallback).
  core::EvaluationOptions vac_opts;
  vac_opts.local_search.max_restarts = 24;
  auto vacation = ev.Evaluate(
      "SELECT PACKAGE(T) FROM travel_items T "
      "SUCH THAT SUM(T.is_flight) = 2 AND SUM(T.is_hotel) = 1 AND "
      "SUM(T.price) <= 3000 AND "
      "(SUM(T.beach_km) <= 2 OR SUM(T.is_car) = 1) "
      "MAXIMIZE SUM(T.comfort)",
      vac_opts);
  ASSERT_TRUE(vacation.ok()) << vacation.status().ToString();
  // Portfolio.
  auto portfolio = ev.Evaluate(
      "SELECT PACKAGE(S) FROM stocks S REPEAT 3 "
      "SUCH THAT SUM(S.price) <= 50000 AND SUM(S.tech_value) >= 10000 AND "
      "SUM(S.is_short) - SUM(S.is_long) BETWEEN -2 AND 2 AND "
      "COUNT(*) BETWEEN 4 AND 15 MAXIMIZE SUM(S.expected_gain)");
  ASSERT_TRUE(portfolio.ok()) << portfolio.status().ToString();
  EXPECT_GT(portfolio->objective, 0.0);
}

// ----- Feature matrix --------------------------------------------------------

struct FeatureCase {
  const char* label;
  const char* query;
  bool expect_translatable;
};

class FeatureMatrixTest : public ::testing::TestWithParam<FeatureCase> {};

TEST_P(FeatureMatrixTest, ParsesEvaluatesValidates) {
  const FeatureCase& fc = GetParam();
  db::Catalog catalog;
  catalog.RegisterOrReplace(datagen::GenerateRecipes(40, 71));
  auto aq = paql::ParseAndAnalyze(fc.query, catalog);
  ASSERT_TRUE(aq.ok()) << fc.label << ": " << aq.status().ToString();
  EXPECT_EQ(
      aq->ilp_translatable && (!aq->has_objective || aq->objective_linear),
      fc.expect_translatable)
      << fc.label << " (" << aq->not_translatable_reason << ")";

  core::QueryEvaluator ev(&catalog);
  core::EvaluationOptions opts;
  opts.local_search.max_restarts = 16;
  auto r = ev.Evaluate(*aq, opts);
  if (!r.ok()) {
    // Infeasibility is an acceptable outcome for some windows; anything
    // else is a failure.
    ASSERT_EQ(r.status().code(), StatusCode::kInfeasible)
        << fc.label << ": " << r.status().ToString();
    return;
  }
  auto valid = core::IsValidPackage(*aq, r->package);
  ASSERT_TRUE(valid.ok()) << fc.label;
  EXPECT_TRUE(*valid) << fc.label << " produced an invalid package";

  // EXPLAIN must succeed for everything that analyzes.
  auto plan = core::ExplainQuery(*aq);
  ASSERT_TRUE(plan.ok()) << fc.label;
  // Template rendering must succeed for any valid sample.
  auto screen = ui::RenderPackageTemplate(*aq, r->package);
  ASSERT_TRUE(screen.ok()) << fc.label;
}

INSTANTIATE_TEST_SUITE_P(
    PaqlFeatures, FeatureMatrixTest,
    ::testing::Values(
        FeatureCase{"plain_count",
                    "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3",
                    true},
        FeatureCase{"where_like",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "WHERE name LIKE '%bowl%' SUCH THAT COUNT(*) >= 1", true},
        FeatureCase{"where_in",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "WHERE cuisine IN ('thai', 'greek') "
                    "SUCH THAT COUNT(*) = 2", true},
        FeatureCase{"sum_window",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT SUM(calories) BETWEEN 800 AND 2000 "
                    "AND COUNT(*) <= 5", true},
        FeatureCase{"avg_rewrite",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT AVG(calories) <= 600 AND COUNT(*) = 3 "
                    "MAXIMIZE SUM(rating)", true},
        FeatureCase{"min_max_extremes",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT MIN(rating) >= 2 AND MAX(calories) <= 1000 "
                    "AND COUNT(*) = 2", true},
        FeatureCase{"count_expr",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT COUNT(sodium) >= 2 AND COUNT(*) = 2", true},
        FeatureCase{"linear_combo",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT 2 * SUM(protein) - SUM(fat) >= 10 "
                    "AND COUNT(*) = 3 MINIMIZE SUM(cost)", true},
        FeatureCase{"repeat",
                    "SELECT PACKAGE(R) FROM recipes R REPEAT 2 "
                    "SUCH THAT COUNT(*) = 4 MAXIMIZE SUM(protein)", true},
        FeatureCase{"disjunction",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT COUNT(*) = 2 OR COUNT(*) = 3", false},
        FeatureCase{"negation",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT NOT (SUM(calories) > 2000) AND COUNT(*) = 2",
                    false},
        FeatureCase{"not_equal",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT COUNT(*) <> 3 AND COUNT(*) BETWEEN 1 AND 4",
                    false},
        FeatureCase{"nonlinear_product",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT SUM(protein) * SUM(fat) <= 5000 "
                    "AND COUNT(*) = 2", false},
        FeatureCase{"avg_objective",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT COUNT(*) = 3 MAXIMIZE AVG(protein)", false},
        FeatureCase{"strict_inequalities",
                    "SELECT PACKAGE(R) FROM recipes R "
                    "SUCH THAT SUM(calories) > 500 AND SUM(calories) < 1500 "
                    "AND COUNT(*) = 2", true}),
    [](const ::testing::TestParamInfo<FeatureCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace pb
