// Unit tests for the PaQL -> ILP translator (§7's "translated into a linear
// program" path): variable creation, constraint rows, extreme-constraint
// handling, and solution decoding.

#include <gtest/gtest.h>

#include "core/translator.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"
#include "solver/milp.h"

namespace pb::core {
namespace {

db::Table MakeMeals() {
  db::Table t("meals", db::Schema({{"id", db::ValueType::kInt},
                                   {"calories", db::ValueType::kDouble},
                                   {"protein", db::ValueType::kDouble},
                                   {"gluten", db::ValueType::kString}}));
  auto add = [&](int64_t id, double cal, double prot, const char* g) {
    ASSERT_TRUE(t.Append({db::Value::Int(id), db::Value::Double(cal),
                          db::Value::Double(prot), db::Value::String(g)})
                    .ok());
  };
  add(0, 700, 30, "full");
  add(1, 250, 12, "free");
  add(2, 900, 55, "free");
  add(3, 300, 20, "free");
  add(4, 550, 25, "full");
  return t;
}

class TranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_.RegisterOrReplace(MakeMeals()); }

  paql::AnalyzedQuery Analyzed(const std::string& text) {
    auto aq = paql::ParseAndAnalyze(text, catalog_);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    return std::move(aq).value();
  }

  db::Catalog catalog_;
};

TEST_F(TranslatorTest, VariablesMatchBaseFilteredCandidates) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) >= 1");
  auto t = TranslateToIlp(aq);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->model.num_variables(), 3);  // rows 1, 2, 3
  EXPECT_EQ(t->candidates, (std::vector<size_t>{1, 2, 3}));
  for (int j = 0; j < 3; ++j) {
    EXPECT_TRUE(t->model.variable(j).is_integer);
    EXPECT_DOUBLE_EQ(t->model.variable(j).lb, 0.0);
    EXPECT_DOUBLE_EQ(t->model.variable(j).ub, 1.0);  // no REPEAT
  }
}

TEST_F(TranslatorTest, RepeatRaisesUpperBounds) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M REPEAT 3 SUCH THAT COUNT(*) >= 1");
  auto t = TranslateToIlp(aq);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->model.variable(0).ub, 3.0);
}

TEST_F(TranslatorTest, ObjectiveCoefficientsArePerTupleValues) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M SUCH THAT COUNT(*) = 2 "
      "MAXIMIZE SUM(protein)");
  auto t = TranslateToIlp(aq);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->model.sense(), solver::ObjectiveSense::kMaximize);
  EXPECT_DOUBLE_EQ(t->model.variable(0).objective, 30.0);
  EXPECT_DOUBLE_EQ(t->model.variable(2).objective, 55.0);
}

TEST_F(TranslatorTest, MinimizeSetsSense) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M SUCH THAT COUNT(*) = 2 "
      "MINIMIZE SUM(calories)");
  auto t = TranslateToIlp(aq);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->model.sense(), solver::ObjectiveSense::kMinimize);
}

TEST_F(TranslatorTest, NonTranslatableQueryRejected) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M "
      "SUCH THAT COUNT(*) = 1 OR COUNT(*) = 2");
  EXPECT_EQ(TranslateToIlp(aq).status().code(), StatusCode::kUnimplemented);
}

TEST_F(TranslatorTest, MaxUpperSideFixesViolatorsToZero) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M SUCH THAT MAX(calories) <= 500");
  auto t = TranslateToIlp(aq);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // Rows 0 (700), 2 (900), 4 (550) exceed 500 -> ub = 0.
  EXPECT_EQ(t->num_fixed_out, 3u);
  EXPECT_DOUBLE_EQ(t->model.variable(0).ub, 0.0);
  EXPECT_DOUBLE_EQ(t->model.variable(1).ub, 1.0);
  EXPECT_DOUBLE_EQ(t->model.variable(2).ub, 0.0);
}

TEST_F(TranslatorTest, MinLowerSideAddsAtLeastOneRow) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M SUCH THAT MAX(calories) >= 800");
  auto t = TranslateToIlp(aq);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // One row forcing >= 1 over qualifying tuples, plus the nonempty row.
  bool found_at_least_one = false;
  for (int i = 0; i < t->model.num_constraints(); ++i) {
    const auto& c = t->model.constraint(i);
    if (c.lo == 1.0 && c.hi == solver::kInfinity && c.terms.size() == 1) {
      // Only row 2 (900 cal) qualifies.
      EXPECT_EQ(t->candidates[c.terms[0].var], 2u);
      found_at_least_one = true;
    }
  }
  EXPECT_TRUE(found_at_least_one);
  // Solving must put row 2 in the package.
  auto r = solver::SolveMilp(t->model);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, solver::MilpStatus::kOptimal);
  Package pkg = DecodeSolution(*t, r->x);
  EXPECT_GE(pkg.MultiplicityOf(2), 1);
}

TEST_F(TranslatorTest, ExtremeInfeasibleWhenNoQualifier) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M SUCH THAT MAX(calories) >= 5000");
  EXPECT_EQ(TranslateToIlp(aq).status().code(), StatusCode::kInfeasible);
}

TEST_F(TranslatorTest, PruningBoundsAddCardinalityRow) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M "
      "SUCH THAT SUM(calories) BETWEEN 1000 AND 1200");
  CardinalityBounds bounds;
  bounds.lo = 2;
  bounds.hi = 4;
  TranslateOptions opts;
  opts.bounds = &bounds;
  auto t = TranslateToIlp(aq, opts);
  ASSERT_TRUE(t.ok());
  bool found = false;
  for (int i = 0; i < t->model.num_constraints(); ++i) {
    if (t->model.constraint(i).name == "cardinality_pruning") {
      EXPECT_DOUBLE_EQ(t->model.constraint(i).lo, 2.0);
      EXPECT_DOUBLE_EQ(t->model.constraint(i).hi, 4.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TranslatorTest, InfeasibleBoundsShortCircuit) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M SUCH THAT COUNT(*) >= 1");
  CardinalityBounds bounds;
  bounds.infeasible = true;
  TranslateOptions opts;
  opts.bounds = &bounds;
  EXPECT_EQ(TranslateToIlp(aq, opts).status().code(),
            StatusCode::kInfeasible);
}

TEST_F(TranslatorTest, DecodeSolutionRoundTrip) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 2 MAXIMIZE SUM(protein)");
  auto t = TranslateToIlp(aq);
  ASSERT_TRUE(t.ok());
  auto r = solver::SolveMilp(t->model);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, solver::MilpStatus::kOptimal);
  Package pkg = DecodeSolution(*t, r->x);
  EXPECT_EQ(pkg.TotalCount(), 2);
  // Optimal: rows 2 (55) and 3 (20) -> 75.
  EXPECT_EQ(pkg.MultiplicityOf(2), 1);
  EXPECT_EQ(pkg.MultiplicityOf(3), 1);
  EXPECT_TRUE(*IsValidPackage(aq, pkg));
  EXPECT_DOUBLE_EQ(*PackageObjective(aq, pkg), 75.0);
}

TEST_F(TranslatorTest, AvgConstraintEndToEnd) {
  auto aq = Analyzed(
      "SELECT PACKAGE(M) FROM meals M "
      "SUCH THAT AVG(calories) <= 300 AND COUNT(*) >= 2 "
      "MAXIMIZE SUM(protein)");
  auto t = TranslateToIlp(aq);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  auto r = solver::SolveMilp(t->model);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, solver::MilpStatus::kOptimal);
  Package pkg = DecodeSolution(*t, r->x);
  // The GExpr validator (independent semantics) must agree.
  EXPECT_TRUE(*IsValidPackage(aq, pkg));
  // Only {250, 300} fits AVG <= 300 with count >= 2.
  EXPECT_EQ(pkg.TotalCount(), 2);
  EXPECT_EQ(pkg.MultiplicityOf(1), 1);
  EXPECT_EQ(pkg.MultiplicityOf(3), 1);
}

TEST_F(TranslatorTest, LargerRecipesEndToEnd) {
  db::Catalog big;
  big.RegisterOrReplace(datagen::GenerateRecipes(400, 11));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R WHERE R.gluten = 'free' "
      "SUCH THAT COUNT(*) = 5 AND SUM(calories) BETWEEN 2000 AND 2600 "
      "AND SUM(protein) >= 120 MINIMIZE SUM(cost)",
      big);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  auto t = TranslateToIlp(*aq);
  ASSERT_TRUE(t.ok());
  auto r = solver::SolveMilp(t->model);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, solver::MilpStatus::kOptimal)
      << solver::MilpStatusToString(r->status);
  Package pkg = DecodeSolution(*t, r->x);
  EXPECT_TRUE(*IsValidPackage(*aq, pkg));
}

}  // namespace
}  // namespace pb::core
