// Warm-start tests for the solver stack: LpBasis snapshot/restore in the
// simplex, basis inheritance across branch-and-bound nodes, cross-solve
// MilpWarmStart reuse, and the end-to-end guarantee the ISSUE pins down —
// warm-started solves produce bit-identical results to cold ones whenever
// the search runs to proven optimality, while spending far fewer simplex
// iterations.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/sketch_refine.h"
#include "datagen/lineitem.h"
#include "db/catalog.h"
#include "paql/analyzer.h"
#include "solver/milp.h"
#include "solver/simplex.h"

namespace pb::solver {
namespace {

/// A package-shaped LP/ILP: n columns, a COUNT row, a ranged weight row,
/// and a cost cap. Continuous random coefficients make the optimum unique
/// with probability one, so warm/cold comparisons can assert exact
/// equality of solutions, not just objectives.
LpModel PackageModel(int n, uint64_t seed, bool integer) {
  Rng rng(seed);
  LpModel m;
  std::vector<LinearTerm> count, weight, cost;
  for (int j = 0; j < n; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), integer);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
    cost.push_back({j, rng.UniformReal(1.0, 50.0)});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 2000, 2600);
  m.AddConstraint("cost", cost, -kInfinity, 120);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

// ----- LpBasis round-trips through SolveLp -----------------------------------

TEST(LpWarmStartTest, ResolveFromOwnBasisTakesNoIterations) {
  LpModel m = PackageModel(200, 7, /*integer=*/false);
  auto cold = SolveLp(m);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->status, LpStatus::kOptimal);
  ASSERT_FALSE(cold->basis.empty());

  auto warm = SolveLp(m, {}, nullptr, &cold->basis);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->status, LpStatus::kOptimal);
  EXPECT_EQ(warm->iterations, 0) << "an optimal basis must price out";
  // Same vertex; values may differ in the last bits because the restored
  // basis inverse is refactorized from scratch rather than accumulated
  // pivot by pivot.
  EXPECT_NEAR(warm->objective, cold->objective, 1e-9);
  ASSERT_EQ(warm->x.size(), cold->x.size());
  for (size_t j = 0; j < warm->x.size(); ++j) {
    EXPECT_NEAR(warm->x[j], cold->x[j], 1e-9) << "x[" << j << "]";
  }
}

TEST(LpWarmStartTest, TightenedBoundIsRepairedByPhaseOne) {
  LpModel m = PackageModel(200, 11, /*integer=*/false);
  auto cold = SolveLp(m);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->status, LpStatus::kOptimal);

  // Cut off the current optimum the way a branch-and-bound child does:
  // force the most fractional-ish variable to zero.
  int pick = -1;
  for (int j = 0; j < m.num_variables(); ++j) {
    if (cold->x[j] > 0.1 && cold->x[j] < 0.9) pick = j;
  }
  if (pick < 0) {
    for (int j = 0; j < m.num_variables(); ++j) {
      if (cold->x[j] > 0.5) pick = j;
    }
  }
  ASSERT_GE(pick, 0);
  std::vector<std::pair<double, double>> bounds;
  for (int j = 0; j < m.num_variables(); ++j) {
    const Variable& v = m.variable(j);
    bounds.emplace_back(v.lb, v.ub);
  }
  bounds[pick] = {0.0, 0.0};

  auto cold_child = SolveLp(m, {}, &bounds);
  auto warm_child = SolveLp(m, {}, &bounds, &cold->basis);
  ASSERT_TRUE(cold_child.ok());
  ASSERT_TRUE(warm_child.ok());
  ASSERT_EQ(cold_child->status, LpStatus::kOptimal);
  ASSERT_EQ(warm_child->status, LpStatus::kOptimal);
  EXPECT_NEAR(warm_child->objective, cold_child->objective, 1e-7);
  EXPECT_LT(warm_child->iterations, cold_child->iterations)
      << "inheriting the parent basis must beat a cold start";
}

TEST(LpWarmStartTest, IllSizedOrCorruptBasisFallsBackToCold) {
  LpModel m = PackageModel(50, 13, /*integer=*/false);
  auto cold = SolveLp(m);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->status, LpStatus::kOptimal);

  LpBasis wrong_size;
  wrong_size.basic = {0};
  wrong_size.stat.assign(4, VarStat::kAtLower);
  auto r1 = SolveLp(m, {}, nullptr, &wrong_size);
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1->status, LpStatus::kOptimal);
  EXPECT_NEAR(r1->objective, cold->objective, 1e-7);

  // Right shape, inconsistent statuses (nothing marked basic).
  LpBasis corrupt;
  corrupt.basic = {0, 1, 2};
  corrupt.stat.assign(m.num_variables() + m.num_constraints(),
                      VarStat::kAtLower);
  auto r2 = SolveLp(m, {}, nullptr, &corrupt);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->status, LpStatus::kOptimal);
  EXPECT_NEAR(r2->objective, cold->objective, 1e-7);

  // Structurally valid but singular: the same column basic in every row.
  LpBasis singular;
  singular.basic = {0, 0, 0};
  singular.stat.assign(m.num_variables() + m.num_constraints(),
                       VarStat::kAtLower);
  singular.stat[0] = VarStat::kBasic;
  auto r3 = SolveLp(m, {}, nullptr, &singular);
  ASSERT_TRUE(r3.ok());
  ASSERT_EQ(r3->status, LpStatus::kOptimal);
  EXPECT_NEAR(r3->objective, cold->objective, 1e-7);
}

// ----- Warm-started branch-and-bound -----------------------------------------

TEST(MilpWarmStartTest, WarmAndColdAgreeBitForBitToOptimality) {
  for (uint64_t seed : {3u, 17u, 71u}) {
    LpModel m = PackageModel(150, seed, /*integer=*/true);
    MilpOptions cold_opts;
    cold_opts.warm_start_lps = false;
    MilpOptions warm_opts;
    warm_opts.warm_start_lps = true;
    auto cold = SolveMilp(m, cold_opts);
    auto warm = SolveMilp(m, warm_opts);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(warm.ok());
    ASSERT_EQ(cold->status, MilpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(warm->status, MilpStatus::kOptimal) << "seed " << seed;
    EXPECT_EQ(warm->x, cold->x) << "seed " << seed;
    EXPECT_NEAR(warm->objective, cold->objective, 1e-9) << "seed " << seed;
    EXPECT_NEAR(warm->best_bound, warm->objective, 1e-9) << "seed " << seed;
    EXPECT_LT(warm->lp_iterations, cold->lp_iterations)
        << "seed " << seed << ": warm start must save simplex iterations";
  }
}

TEST(MilpWarmStartTest, CrossSolveReuseSavesIterations) {
  LpModel m = PackageModel(300, 41, /*integer=*/true);
  MilpWarmStart warm;
  MilpOptions opts;
  opts.warm = &warm;
  auto first = SolveMilp(m, opts);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->status, MilpStatus::kOptimal);
  EXPECT_EQ(warm.model_signature, m.StructuralSignature());
  EXPECT_FALSE(warm.root_basis.empty());

  auto second = SolveMilp(m, opts);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->status, MilpStatus::kOptimal);
  EXPECT_EQ(second->x, first->x);
  EXPECT_LT(second->lp_iterations, first->lp_iterations)
      << "the remembered root basis and pseudocosts must pay off";
}

TEST(MilpWarmStartTest, StructuralMismatchResetsWarmState) {
  LpModel a = PackageModel(60, 5, /*integer=*/true);
  MilpWarmStart warm;
  MilpOptions opts;
  opts.warm = &warm;
  ASSERT_TRUE(SolveMilp(a, opts).ok());
  uint64_t sig_a = warm.model_signature;

  // Different dimensions: stale basis/pseudocosts must not leak in.
  LpModel b = PackageModel(61, 5, /*integer=*/true);
  MilpOptions plain;
  auto fresh = SolveMilp(b, plain);
  auto reused = SolveMilp(b, opts);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(reused.ok());
  EXPECT_NE(warm.model_signature, sig_a);
  ASSERT_EQ(fresh->status, MilpStatus::kOptimal);
  ASSERT_EQ(reused->status, MilpStatus::kOptimal);
  EXPECT_EQ(reused->x, fresh->x);
  EXPECT_NEAR(reused->objective, fresh->objective, 1e-9);
}

// ----- The kIterationLimit lost-subtree regression ---------------------------

TEST(MilpWarmStartTest, IterationLimitedNodesAreRequeuedNotDropped) {
  // Pre-fix behavior: a node whose LP hit kIterationLimit was silently
  // dropped with its whole subtree, so a starved LP budget could yield
  // kNoSolution (or a wrong bound) on a perfectly solvable model. The fix
  // re-queues the node with a doubled budget until it solves.
  LpModel m = PackageModel(40, 23, /*integer=*/true);
  auto reference = SolveMilp(m);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->status, MilpStatus::kOptimal);

  for (int64_t tiny : {1, 2, 5}) {
    MilpOptions opts;
    opts.lp.max_iterations = tiny;
    auto r = SolveMilp(m, opts);
    ASSERT_TRUE(r.ok()) << "max_iterations " << tiny;
    ASSERT_EQ(r->status, MilpStatus::kOptimal) << "max_iterations " << tiny;
    EXPECT_NEAR(r->objective, reference->objective, 1e-6)
        << "max_iterations " << tiny;
    EXPECT_EQ(r->x, reference->x) << "max_iterations " << tiny;
  }
}

// ----- End to end through SketchRefine ---------------------------------------

TEST(SketchRefineWarmStartTest, WarmAndColdPackagesAreBitIdentical) {
  db::Catalog catalog;
  catalog.RegisterOrReplace(datagen::GenerateLineitems(10000, 5));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(L) FROM lineitem L "
      "SUCH THAT COUNT(*) = 24 AND SUM(quantity) = 600 AND "
      "SUM(extendedprice) BETWEEN 50000 AND 51000 "
      "MAXIMIZE SUM(revenue)",
      catalog);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();

  core::SketchRefineOptions cold_opts;
  cold_opts.partition_size = 128;
  cold_opts.milp.warm_start_lps = false;
  auto cold = core::SketchRefine(*aq, cold_opts);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->found);

  core::SketchRefineOptions warm_opts = cold_opts;
  warm_opts.milp.warm_start_lps = true;
  auto warm = core::SketchRefine(*aq, warm_opts);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(warm->found);

  // Every sub-ILP solves to proven optimality here (no node budget), so
  // warm starting changes the path, never the answer.
  EXPECT_EQ(warm->package, cold->package)
      << warm->package.Fingerprint() << " vs " << cold->package.Fingerprint();
  EXPECT_EQ(warm->objective, cold->objective);
  // The ISSUE's acceptance bar: >= 2x fewer total simplex iterations on
  // refine workloads (the checked-in bench shows ~6x on the larger run).
  EXPECT_LE(warm->lp_iterations * 2, cold->lp_iterations)
      << "warm " << warm->lp_iterations << " vs cold " << cold->lp_iterations;
}

}  // namespace
}  // namespace pb::solver
