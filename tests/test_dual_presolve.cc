// Tests for the dual-simplex child re-solve and the node-presolve bound
// propagation: entry conditions, dual-vs-primal bit-identity (LP, MILP,
// and end-to-end SketchRefine packages), presolve correctness against the
// brute-force oracle on small instances, and the ablation knobs that
// restore the warm-primal path exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/random.h"
#include "core/sketch_refine.h"
#include "datagen/lineitem.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"
#include "solver/milp.h"
#include "solver/simplex.h"

namespace pb::solver {
namespace {

/// A package-shaped LP/ILP: n columns, a COUNT row, a ranged weight row,
/// and a cost cap. Continuous random coefficients make the optimum unique
/// with probability one, so dual/primal comparisons can assert exact
/// equality of solutions, not just objectives.
LpModel PackageModel(int n, uint64_t seed, bool integer) {
  Rng rng(seed);
  LpModel m;
  std::vector<LinearTerm> count, weight, cost;
  for (int j = 0; j < n; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), integer);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
    cost.push_back({j, rng.UniformReal(1.0, 50.0)});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 2000, 2600);
  m.AddConstraint("cost", cost, -kInfinity, 120);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

/// The branch-and-bound child pattern: the parent's bounds with one
/// variable's range tightened.
std::vector<std::pair<double, double>> ChildBounds(const LpModel& m, int var,
                                                   double lo, double hi) {
  std::vector<std::pair<double, double>> bounds;
  for (int j = 0; j < m.num_variables(); ++j) {
    bounds.emplace_back(m.variable(j).lb, m.variable(j).ub);
  }
  bounds[var] = {lo, hi};
  return bounds;
}

/// A variable that is strictly between its bounds at the LP optimum (the
/// interesting one to branch away).
int FractionalVariable(const LpModel& m, const std::vector<double>& x) {
  for (int j = 0; j < m.num_variables(); ++j) {
    if (x[j] > 0.1 && x[j] < 0.9) return j;
  }
  for (int j = 0; j < m.num_variables(); ++j) {
    if (x[j] > 0.5) return j;
  }
  return -1;
}

// ----- LP level: dual entry, identity, fallback ------------------------------

TEST(DualSimplexTest, EntersOnChildResolveAndMatchesCold) {
  for (uint64_t seed : {7u, 11u, 23u, 41u}) {
    LpModel m = PackageModel(200, seed, /*integer=*/false);
    auto parent = SolveLp(m);
    ASSERT_TRUE(parent.ok());
    ASSERT_EQ(parent->status, LpStatus::kOptimal);
    EXPECT_EQ(parent->dual_iterations, 0)
        << "cold solves never enter the dual simplex";
    int pick = FractionalVariable(m, parent->x);
    ASSERT_GE(pick, 0) << "seed " << seed;
    auto bounds = ChildBounds(m, pick, 0.0, 0.0);

    auto cold_child = SolveLp(m, {}, &bounds);
    auto dual_child = SolveLp(m, {}, &bounds, &parent->basis);
    ASSERT_TRUE(cold_child.ok());
    ASSERT_TRUE(dual_child.ok());
    ASSERT_EQ(cold_child->status, LpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(dual_child->status, LpStatus::kOptimal) << "seed " << seed;
    EXPECT_GT(dual_child->dual_iterations, 0)
        << "seed " << seed
        << ": a bound-infeasible dual-feasible warm basis must enter the "
           "dual simplex";
    EXPECT_NEAR(dual_child->objective, cold_child->objective, 1e-7)
        << "seed " << seed;
    for (size_t j = 0; j < dual_child->x.size(); ++j) {
      EXPECT_NEAR(dual_child->x[j], cold_child->x[j], 1e-7)
          << "seed " << seed << " x[" << j << "]";
    }
    EXPECT_LT(dual_child->iterations, cold_child->iterations)
        << "seed " << seed << ": the dual re-solve must beat a cold start";
  }
}

TEST(DualSimplexTest, KnobOffReproducesPrimalRepairExactly) {
  LpModel m = PackageModel(200, 11, /*integer=*/false);
  auto parent = SolveLp(m);
  ASSERT_TRUE(parent.ok());
  ASSERT_EQ(parent->status, LpStatus::kOptimal);
  int pick = FractionalVariable(m, parent->x);
  ASSERT_GE(pick, 0);
  auto bounds = ChildBounds(m, pick, 0.0, 0.0);

  SimplexOptions no_dual;
  no_dual.use_dual_simplex = false;
  auto primal = SolveLp(m, no_dual, &bounds, &parent->basis);
  auto dual = SolveLp(m, {}, &bounds, &parent->basis);
  ASSERT_TRUE(primal.ok());
  ASSERT_TRUE(dual.ok());
  ASSERT_EQ(primal->status, LpStatus::kOptimal);
  ASSERT_EQ(dual->status, LpStatus::kOptimal);
  EXPECT_EQ(primal->dual_iterations, 0)
      << "the ablation knob must keep the dual simplex out entirely";
  EXPECT_GT(dual->dual_iterations, 0);
  EXPECT_NEAR(primal->objective, dual->objective, 1e-7);
  // The dual path must spend no more simplex iterations than the phase-1
  // repair it replaces (on these models it is typically several times
  // cheaper; the checked-in bench quantifies that).
  EXPECT_LE(dual->iterations, primal->iterations);
}

TEST(DualSimplexTest, InfeasibleChildIsProvenNotFaked) {
  // Fix all but three variables to zero: COUNT(*) = 5 becomes impossible,
  // and the dual simplex must prove it (matching the cold verdict) rather
  // than return a bogus point.
  LpModel m = PackageModel(60, 13, /*integer=*/false);
  auto parent = SolveLp(m);
  ASSERT_TRUE(parent.ok());
  ASSERT_EQ(parent->status, LpStatus::kOptimal);
  std::vector<std::pair<double, double>> bounds;
  for (int j = 0; j < m.num_variables(); ++j) {
    bounds.emplace_back(0.0, j < 3 ? 1.0 : 0.0);
  }
  auto cold = SolveLp(m, {}, &bounds);
  auto warm = SolveLp(m, {}, &bounds, &parent->basis);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cold->status, LpStatus::kInfeasible);
  EXPECT_EQ(warm->status, LpStatus::kInfeasible);
}

// ----- MILP level: knob ablations and bit-identity ---------------------------

TEST(MilpDualSimplexTest, DualAndPrimalWarmSolvesAreBitIdentical) {
  for (uint64_t seed : {3u, 17u, 71u}) {
    LpModel m = PackageModel(150, seed, /*integer=*/true);
    MilpOptions primal_opts;
    primal_opts.use_dual_simplex = false;
    MilpOptions dual_opts;
    dual_opts.use_dual_simplex = true;
    auto primal = SolveMilp(m, primal_opts);
    auto dual = SolveMilp(m, dual_opts);
    ASSERT_TRUE(primal.ok());
    ASSERT_TRUE(dual.ok());
    ASSERT_EQ(primal->status, MilpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(dual->status, MilpStatus::kOptimal) << "seed " << seed;
    EXPECT_EQ(dual->x, primal->x) << "seed " << seed;
    EXPECT_NEAR(dual->objective, primal->objective, 1e-9) << "seed " << seed;
    EXPECT_EQ(primal->lp_dual_iterations, 0) << "seed " << seed;
    EXPECT_GT(dual->lp_dual_iterations, 0) << "seed " << seed;
    EXPECT_LT(dual->lp_iterations, primal->lp_iterations)
        << "seed " << seed
        << ": dual child re-solves must save simplex iterations over the "
           "warm-primal repair";
  }
}

TEST(MilpNodePresolveTest, OnAndOffAgreeToOptimality) {
  for (uint64_t seed : {3u, 17u, 71u}) {
    LpModel m = PackageModel(150, seed, /*integer=*/true);
    MilpOptions off;
    off.node_presolve = false;
    MilpOptions on;
    on.node_presolve = true;
    auto a = SolveMilp(m, off);
    auto b = SolveMilp(m, on);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->status, MilpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(b->status, MilpStatus::kOptimal) << "seed " << seed;
    EXPECT_EQ(b->x, a->x) << "seed " << seed;
    EXPECT_NEAR(b->objective, a->objective, 1e-9) << "seed " << seed;
    EXPECT_EQ(a->presolve_fixed_bounds, 0);
    EXPECT_EQ(a->presolve_infeasible_children, 0);
  }
}

TEST(MilpNodePresolveTest, CountRowFixesImpliedBinaries) {
  // max 2*x0 + 3*x1 s.t. x0 + x1 + x2 = 1, x0 + 2*x1 <= 1.5: the unique LP
  // optimum is fractional (x0 = x1 = 0.5), so the solver branches on x0.
  // The up-branch x0 >= 1 saturates the COUNT row's minimum activity — it
  // stays cap-feasible — which fixes x1 and x2 to zero by propagation
  // alone.
  LpModel m;
  int x0 = m.AddVariable("x0", 0, 1, 2.0, true);
  int x1 = m.AddVariable("x1", 0, 1, 3.0, true);
  int x2 = m.AddVariable("x2", 0, 1, 0.0, true);
  m.AddConstraint("count", {{x0, 1.0}, {x1, 1.0}, {x2, 1.0}}, 1, 1);
  m.AddConstraint("cap", {{x0, 1.0}, {x1, 2.0}}, -kInfinity, 1.5);
  m.SetSense(ObjectiveSense::kMaximize);

  MilpOptions opts;
  opts.rounding_heuristic = false;  // keep the tree honest for the counters
  auto r = SolveMilp(m, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, MilpStatus::kOptimal);
  EXPECT_NEAR(r->objective, 2.0, 1e-9);  // x0 = 1 is the integer optimum
  EXPECT_GT(r->presolve_fixed_bounds, 0)
      << "branching x0 up must fix x1/x2 through the COUNT row";

  MilpOptions off = opts;
  off.node_presolve = false;
  auto cold = SolveMilp(m, off);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->status, MilpStatus::kOptimal);
  EXPECT_EQ(r->x, cold->x);
}

TEST(MilpNodePresolveTest, InfeasibleChildrenPrunedWithZeroLpWork) {
  // 0.4 <= y <= 0.6, y binary: both children of the root die in presolve.
  LpModel m;
  int y = m.AddVariable("y", 0, 1, 1, true);
  m.AddConstraint("c", {{y, 1.0}}, 0.4, 0.6);
  auto r = SolveMilp(m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, MilpStatus::kInfeasible);
  EXPECT_EQ(r->presolve_infeasible_children, 2);
  EXPECT_EQ(r->nodes, 1) << "only the root LP may be solved";
}

/// Exhaustive integer oracle (the solver trust anchor for small models).
double IntegerOracle(const LpModel& m, int hi, bool* feasible) {
  const bool maximize = m.sense() == ObjectiveSense::kMaximize;
  double best = maximize ? -kInfinity : kInfinity;
  *feasible = false;
  int n = m.num_variables();
  std::vector<double> x(n, 0.0);
  std::function<void(int)> rec = [&](int j) {
    if (j == n) {
      if (!m.IsFeasible(x, 1e-9)) return;
      *feasible = true;
      double obj = m.ObjectiveValue(x);
      best = maximize ? std::max(best, obj) : std::min(best, obj);
      return;
    }
    for (int v = 0; v <= hi; ++v) {
      x[j] = v;
      rec(j + 1);
    }
  };
  rec(0);
  return best;
}

TEST(MilpNodePresolveTest, RandomizedAgainstOracleWithRangedRows) {
  // Ranged (two-sided) rows are where propagation both fixes variables and
  // prunes children, so this is the adversarial surface for presolve; the
  // dual simplex rides along on every warm child re-solve.
  Rng rng(20260726);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    LpModel m;
    int n = static_cast<int>(rng.UniformInt(2, 6));
    int hi = static_cast<int>(rng.UniformInt(1, 2));
    for (int j = 0; j < n; ++j) {
      m.AddVariable("x" + std::to_string(j), 0, hi,
                    static_cast<double>(rng.UniformInt(-4, 6)), true);
    }
    int rows = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < rows; ++i) {
      std::vector<LinearTerm> terms;
      for (int j = 0; j < n; ++j) {
        terms.push_back({j, static_cast<double>(rng.UniformInt(-3, 4))});
      }
      double lo = static_cast<double>(rng.UniformInt(-6, 2));
      double hi_b = lo + static_cast<double>(rng.UniformInt(0, 6));
      m.AddConstraint("r" + std::to_string(i), terms, lo, hi_b);
    }
    m.SetSense(rng.Bernoulli(0.5) ? ObjectiveSense::kMaximize
                                  : ObjectiveSense::kMinimize);
    bool oracle_feasible = false;
    double oracle = IntegerOracle(m, hi, &oracle_feasible);

    MilpOptions off;
    off.node_presolve = false;
    off.use_dual_simplex = false;
    auto base = SolveMilp(m, off);
    auto full = SolveMilp(m);
    ASSERT_TRUE(base.ok()) << "trial " << trial;
    ASSERT_TRUE(full.ok()) << "trial " << trial;
    if (oracle_feasible) {
      ASSERT_EQ(full->status, MilpStatus::kOptimal) << "trial " << trial;
      ASSERT_EQ(base->status, MilpStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(full->objective, oracle, 1e-6) << "trial " << trial;
      EXPECT_NEAR(base->objective, oracle, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.IsFeasible(full->x, 1e-6)) << "trial " << trial;
      ++checked;
    } else {
      EXPECT_EQ(full->status, MilpStatus::kInfeasible) << "trial " << trial;
      EXPECT_EQ(base->status, MilpStatus::kInfeasible) << "trial " << trial;
    }
  }
  EXPECT_GE(checked, 20);
}

}  // namespace
}  // namespace pb::solver

namespace pb::core {
namespace {

// ----- End to end: the tier-1 query suite, dual/presolve vs the old path -----

struct QueryCase {
  const char* name;
  const char* text;
};

/// The tier-1 SketchRefine workloads (recipes + lineitem shapes from the
/// suite), each solved under the old warm-primal path and the new
/// dual+presolve path: packages must be bit-identical, and the new path
/// must not spend more simplex iterations.
TEST(SketchRefineDualPresolveTest, QuerySuitePackagesBitIdentical) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(600, 17));
  c.RegisterOrReplace(datagen::GenerateLineitems(2000, 5));
  const QueryCase cases[] = {
      {"recipes-meal",
       "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 6 AND "
       "SUM(calories) BETWEEN 2400 AND 3600 MAXIMIZE SUM(protein)"},
      {"recipes-capped",
       "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 4 AND "
       "SUM(calories) <= 2400 MAXIMIZE SUM(rating)"},
      {"lineitem-revenue",
       "SELECT PACKAGE(L) FROM lineitem L SUCH THAT COUNT(*) = 8 AND "
       "SUM(quantity) <= 200 MAXIMIZE SUM(revenue)"},
      {"lineitem-window",
       "SELECT PACKAGE(L) FROM lineitem L SUCH THAT COUNT(*) = 12 AND "
       "SUM(quantity) = 300 AND SUM(extendedprice) BETWEEN 20000 AND 26000 "
       "MAXIMIZE SUM(revenue)"},
  };
  for (const QueryCase& qc : cases) {
    auto aq = paql::ParseAndAnalyze(qc.text, c);
    ASSERT_TRUE(aq.ok()) << qc.name << ": " << aq.status().ToString();

    SketchRefineOptions old_path;
    old_path.partition_size = 64;
    old_path.milp.use_dual_simplex = false;
    old_path.milp.node_presolve = false;
    auto old_r = SketchRefine(*aq, old_path);
    ASSERT_TRUE(old_r.ok()) << qc.name << ": " << old_r.status().ToString();

    SketchRefineOptions new_path = old_path;
    new_path.milp.use_dual_simplex = true;
    new_path.milp.node_presolve = true;
    auto new_r = SketchRefine(*aq, new_path);
    ASSERT_TRUE(new_r.ok()) << qc.name << ": " << new_r.status().ToString();

    ASSERT_EQ(new_r->found, old_r->found) << qc.name;
    if (!old_r->found) continue;
    EXPECT_EQ(new_r->package, old_r->package)
        << qc.name << ": " << new_r->package.Fingerprint() << " vs "
        << old_r->package.Fingerprint();
    EXPECT_EQ(new_r->objective, old_r->objective) << qc.name;
    EXPECT_EQ(old_r->lp_dual_iterations, 0) << qc.name;
    EXPECT_LE(new_r->lp_iterations, old_r->lp_iterations)
        << qc.name << ": the dual+presolve path must not cost iterations";
  }
}

TEST(SketchRefineDualPresolveTest, DualIterationsReportedOnRefineWorkload) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateRecipes(600, 41));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 6 AND "
      "SUM(calories) BETWEEN 2400 AND 3600 AND SUM(fat) <= 180 "
      "MAXIMIZE SUM(protein)",
      c);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  SketchRefineOptions opts;
  opts.partition_size = 50;
  auto r = SketchRefine(*aq, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->found);
  EXPECT_GT(r->lp_dual_iterations, 0)
      << "the refine/repair sub-ILPs must exercise the dual re-solve";
  EXPECT_LE(r->lp_dual_iterations, r->lp_iterations);
}

}  // namespace
}  // namespace pb::core
