// End-to-end smoke tests: the paper's running example (the athlete's meal
// plan, §2) through every evaluation strategy.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

namespace pb {
namespace {

// The §2 query verbatim (modulo typographic quotes).
constexpr const char* kMealQuery = R"(
    SELECT PACKAGE(R) AS P
    FROM Recipes R
    WHERE R.gluten = 'free'
    SUCH THAT COUNT(*) = 3 AND
              SUM(P.calories) BETWEEN 2000 AND 2500
    MAXIMIZE SUM(P.protein)
)";

class SmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.RegisterOrReplace(datagen::GenerateRecipes(120, /*seed=*/7));
  }
  db::Catalog catalog_;
};

TEST_F(SmokeTest, MealQueryParsesAndAnalyzes) {
  auto aq = paql::ParseAndAnalyze(kMealQuery, catalog_);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  EXPECT_TRUE(aq->ilp_translatable) << aq->not_translatable_reason;
  EXPECT_TRUE(aq->has_objective);
  EXPECT_TRUE(aq->objective_linear);
  EXPECT_EQ(aq->max_multiplicity, 1);
  // COUNT(*) = 3 and the calories BETWEEN make two linear constraints.
  EXPECT_EQ(aq->linear_constraints.size(), 2u);
}

TEST_F(SmokeTest, IlpSolverFindsValidOptimalPackage) {
  auto aq = paql::ParseAndAnalyze(kMealQuery, catalog_);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  core::QueryEvaluator evaluator(&catalog_);
  core::EvaluationOptions opts;
  opts.strategy = core::Strategy::kIlpSolver;
  auto r = evaluator.Evaluate(*aq, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->proven_optimal);
  EXPECT_EQ(r->package.TotalCount(), 3);
  auto valid = core::IsValidPackage(*aq, r->package);
  ASSERT_TRUE(valid.ok()) << valid.status().ToString();
  EXPECT_TRUE(*valid);
}

TEST_F(SmokeTest, StrategiesAgreeOnOptimalObjective) {
  // Small input so brute force is exhaustive quickly.
  db::Catalog small;
  small.RegisterOrReplace(datagen::GenerateRecipes(18, /*seed=*/3));
  auto aq = paql::ParseAndAnalyze(kMealQuery, small);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  core::QueryEvaluator evaluator(&small);

  core::EvaluationOptions ilp;
  ilp.strategy = core::Strategy::kIlpSolver;
  auto r_ilp = evaluator.Evaluate(*aq, ilp);

  core::EvaluationOptions bf;
  bf.strategy = core::Strategy::kBruteForce;
  auto r_bf = evaluator.Evaluate(*aq, bf);

  // Either both find the optimum or both prove infeasibility.
  ASSERT_EQ(r_ilp.ok(), r_bf.ok())
      << "ilp: " << r_ilp.status().ToString()
      << " bf: " << r_bf.status().ToString();
  if (r_ilp.ok()) {
    EXPECT_NEAR(r_ilp->objective, r_bf->objective, 1e-6);
  }
}

TEST_F(SmokeTest, LocalSearchFindsValidPackage) {
  auto aq = paql::ParseAndAnalyze(kMealQuery, catalog_);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  core::QueryEvaluator evaluator(&catalog_);
  core::EvaluationOptions opts;
  opts.strategy = core::Strategy::kLocalSearch;
  auto r = evaluator.Evaluate(*aq, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto valid = core::IsValidPackage(*aq, r->package);
  ASSERT_TRUE(valid.ok()) << valid.status().ToString();
  EXPECT_TRUE(*valid);
}

TEST_F(SmokeTest, AutoStrategyWorks) {
  core::QueryEvaluator evaluator(&catalog_);
  auto r = evaluator.Evaluate(kMealQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->package.TotalCount(), 3);
}

}  // namespace
}  // namespace pb
