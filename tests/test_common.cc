// Unit tests for the common substrate: Status/Result, strings, math, random.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <set>

#include "common/math.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace pb {
namespace {

// ----- Status / Result -----------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Unbounded("x").code(), StatusCode::kUnbounded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HelperParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> HelperDouble(int v) {
  PB_ASSIGN_OR_RETURN(int x, HelperParsePositive(v));
  return x * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = HelperDouble(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = HelperDouble(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ----- Strings ---------------------------------------------------------------

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

TEST(StringsTest, CaseConversionAndCompare) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiToUpper("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCase("Package", "pAcKaGe"));
  EXPECT_FALSE(EqualsIgnoreCase("Package", "Packages"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, JoinInverseOfSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, FormatDoubleIntegralValues) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-120.0), "-120");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
}

TEST(StringsTest, LikeMatchBasics) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%llo"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("hello", "%"));
  EXPECT_FALSE(LikeMatch("hello", "h_loo"));
  EXPECT_FALSE(LikeMatch("hello", "hello_"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
}

TEST(StringsTest, LikeMatchBacktracking) {
  // Multiple '%' require backtracking in naive matchers.
  EXPECT_TRUE(LikeMatch("abcabcabc", "%abc%abc"));
  EXPECT_TRUE(LikeMatch("aaaaab", "%a%b"));
  EXPECT_FALSE(LikeMatch("aaaaa", "%b%"));
}

// ----- Math ------------------------------------------------------------------

TEST(MathTest, Log2FactorialSmallValues) {
  EXPECT_DOUBLE_EQ(Log2Factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Factorial(1), 0.0);
  EXPECT_NEAR(Log2Factorial(4), std::log2(24.0), 1e-9);
}

TEST(MathTest, Log2BinomialMatchesExact) {
  EXPECT_NEAR(Log2Binomial(10, 3), std::log2(120.0), 1e-9);
  EXPECT_NEAR(Log2Binomial(52, 5), std::log2(2598960.0), 1e-6);
  EXPECT_EQ(Log2Binomial(5, 6), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(Log2Binomial(5, -1), -std::numeric_limits<double>::infinity());
}

TEST(MathTest, Log2BinomialSumFullRowIs2PowN) {
  // sum_k C(n,k) = 2^n.
  EXPECT_NEAR(Log2BinomialSum(20, 0, 20), 20.0, 1e-9);
  EXPECT_NEAR(Log2BinomialSum(100, 0, 100), 100.0, 1e-9);
}

TEST(MathTest, Log2BinomialSumClampsRange) {
  EXPECT_NEAR(Log2BinomialSum(10, -5, 100), 10.0, 1e-9);
  EXPECT_EQ(Log2BinomialSum(10, 7, 3),
            -std::numeric_limits<double>::infinity());
}

TEST(MathTest, BinomialOrSaturate) {
  EXPECT_EQ(BinomialOrSaturate(10, 3), 120u);
  EXPECT_EQ(BinomialOrSaturate(0, 0), 1u);
  EXPECT_EQ(BinomialOrSaturate(5, 6), 0u);
  // C(200, 100) overflows uint64: expect saturation.
  EXPECT_EQ(BinomialOrSaturate(200, 100),
            std::numeric_limits<uint64_t>::max());
}

TEST(MathTest, NearlyEqual) {
  EXPECT_TRUE(NearlyEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(NearlyEqual(1.0, 1.1));
}

// ----- Random ----------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(11);
  auto sample = rng.SampleIndices(50, 20);
  std::set<size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 20u);
  for (size_t i : sample) EXPECT_LT(i, 50u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  double t1 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.ElapsedSeconds(), t1);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) pool.Submit([&sum, i] { sum += i; });
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.Submit([&calls] { ++calls; });
  pool.Wait();
  EXPECT_EQ(calls.load(), 1);
  pool.Submit([&calls] { ++calls; });
  pool.Submit([&calls] { ++calls; });
  pool.Wait();
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> calls{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.Submit([&calls] { ++calls; });
  }
  EXPECT_EQ(calls.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

/// A task that parks on a worker until released, with a handshake so the
/// test can be sure a WORKER (not a helping waiter) is the one parked
/// before it proceeds — otherwise the test thread itself could steal the
/// blocker and deadlock on its own release.
struct Blocker {
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;

  std::function<void()> Task() {
    return [this] {
      std::unique_lock<std::mutex> lock(mu);
      started = true;
      cv.notify_all();
      cv.wait(lock, [this] { return release; });
    };
  }
  void AwaitStarted() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return started; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  }
};

TEST(ThreadPoolTest, TryRunOneDrainsQueuedTask) {
  ThreadPool pool(1);
  // Park the lone worker so further submissions must queue.
  Blocker blocker;
  pool.Submit(blocker.Task());
  blocker.AwaitStarted();
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ++ran; });
  // The queued task runs on THIS thread.
  EXPECT_TRUE(pool.TryRunOne());
  EXPECT_EQ(ran.load(), 1);
  EXPECT_FALSE(pool.TryRunOne());  // queue is empty again
  blocker.Release();
  pool.Wait();
}

TEST(TaskGroupTest, WaitScopesToTheGroupNotThePool) {
  ThreadPool pool(2);
  // Group B parks one task on a worker; group A's Wait must still return.
  Blocker blocker;
  TaskGroup b(&pool);
  b.Spawn(blocker.Task());
  blocker.AwaitStarted();
  TaskGroup a(&pool);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 64; ++i) a.Spawn([&sum, i] { sum += i; });
  a.Wait();
  EXPECT_EQ(sum.load(), 64 * 65 / 2);
  blocker.Release();
  b.Wait();
}

TEST(TaskGroupTest, NestedWaitOnSharedPoolDoesNotDeadlock) {
  // A pool task spawns a subgroup into the SAME single-thread pool and
  // waits on it: Wait's work stealing must run the subtasks inline.
  ThreadPool pool(1);
  std::atomic<int> inner_runs{0};
  std::atomic<bool> outer_done{false};
  TaskGroup outer(&pool);
  outer.Spawn([&] {
    TaskGroup inner(&pool);
    for (int i = 0; i < 8; ++i) inner.Spawn([&inner_runs] { ++inner_runs; });
    inner.Wait();
    outer_done = true;
  });
  outer.Wait();
  EXPECT_EQ(inner_runs.load(), 8);
  EXPECT_TRUE(outer_done.load());
}

TEST(TaskGroupTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  TaskGroup group(&pool);
  std::atomic<int> calls{0};
  group.Spawn([&calls] { ++calls; });
  group.Wait();
  EXPECT_EQ(calls.load(), 1);
  for (int i = 0; i < 10; ++i) group.Spawn([&calls] { ++calls; });
  group.Wait();
  EXPECT_EQ(calls.load(), 11);
}

}  // namespace
}  // namespace pb
