// Large-instance SketchRefine suite — the original benchmark-scale
// randomized workloads that used to dominate the tier-1 wall clock. They
// are CTest-registered under the "slow" label and DISABLED by default;
// opt in with:
//
//   cmake -B build -S . -DPB_RUN_SLOW_TESTS=ON
//   cd build && ctest -L slow --output-on-failure
//
// The fast suite (tests/test_sketch_refine.cc) keeps full code-path
// coverage on smaller instances; this one re-checks the same invariants at
// the scale the E6 benchmarks run.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/sketch_refine.h"
#include "datagen/lineitem.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

namespace pb::core {
namespace {

constexpr const char* kTightQuery =
    "SELECT PACKAGE(L) FROM lineitem L "
    "SUCH THAT COUNT(*) = 24 AND SUM(quantity) = 600 AND "
    "SUM(extendedprice) BETWEEN 50000 AND 51000 "
    "MAXIMIZE SUM(revenue)";

class SketchRefineSlowTest : public ::testing::Test {
 protected:
  paql::AnalyzedQuery Analyzed(const db::Catalog& c, const std::string& t) {
    auto aq = paql::ParseAndAnalyze(t, c);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    return std::move(aq).value();
  }
};

TEST_F(SketchRefineSlowTest, ThreadCountIdentityAtBenchmarkScale) {
  // The BM_RefineThreads workload: 50k tuples, tight two-sided windows,
  // deterministic node budgets. Any thread count must produce the
  // bit-identical package.
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateLineitems(50000, 5));
  auto aq = Analyzed(c, kTightQuery);
  SketchRefineOptions base;
  base.partition_size = 512;
  base.milp.max_nodes = 3000;
  base.milp.time_limit_s = 1e9;  // node budget is the deterministic limit

  SketchRefineResult reference;
  for (int threads : {1, 2, 4}) {
    SketchRefineOptions opts = base;
    opts.num_threads = threads;
    auto r = SketchRefine(aq, opts);
    ASSERT_TRUE(r.ok()) << "threads=" << threads << ": "
                        << r.status().ToString();
    ASSERT_TRUE(r->found) << "threads=" << threads;
    if (threads == 1) {
      reference = std::move(r).value();
      continue;
    }
    EXPECT_EQ(r->package, reference.package) << "threads=" << threads;
    EXPECT_EQ(r->objective, reference.objective) << "threads=" << threads;
    EXPECT_EQ(r->refine_ilps_solved, reference.refine_ilps_solved)
        << "threads=" << threads;
  }
}

TEST_F(SketchRefineSlowTest, WarmColdIdentityAtBenchmarkScale) {
  // Every sub-ILP solves to proven optimality: warm starting changes the
  // path, never the answer — and must save at least half the iterations.
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateLineitems(20000, 5));
  auto aq = Analyzed(c, kTightQuery);
  SketchRefineOptions cold_opts;
  cold_opts.partition_size = 256;
  cold_opts.milp.warm_start_lps = false;
  auto cold = SketchRefine(aq, cold_opts);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->found);

  SketchRefineOptions warm_opts = cold_opts;
  warm_opts.milp.warm_start_lps = true;
  auto warm = SketchRefine(aq, warm_opts);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(warm->found);

  EXPECT_EQ(warm->package, cold->package)
      << warm->package.Fingerprint() << " vs " << cold->package.Fingerprint();
  EXPECT_EQ(warm->objective, cold->objective);
  EXPECT_LE(warm->lp_iterations * 2, cold->lp_iterations)
      << "warm " << warm->lp_iterations << " vs cold " << cold->lp_iterations;
}

TEST_F(SketchRefineSlowTest, PartitionSizeSweepAtBenchmarkScale) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateLineitems(10000, 5));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(L) FROM lineitem L "
                     "SUCH THAT COUNT(*) = 10 AND SUM(quantity) <= 250 AND "
                     "SUM(extendedprice) BETWEEN 2000 AND 60000 "
                     "MAXIMIZE SUM(revenue)");
  for (size_t tau : {16, 64, 256, 1024}) {
    SketchRefineOptions opts;
    opts.partition_size = tau;
    opts.milp.time_limit_s = 30.0;
    auto r = SketchRefine(aq, opts);
    ASSERT_TRUE(r.ok()) << "tau=" << tau << ": " << r.status().ToString();
    ASSERT_TRUE(r->found) << "tau=" << tau;
    EXPECT_TRUE(*IsValidPackage(aq, r->package)) << "tau=" << tau;
  }
}

TEST_F(SketchRefineSlowTest, ApproximationWithinReasonOfDirectAtScale) {
  db::Catalog c;
  c.RegisterOrReplace(datagen::GenerateLineitems(5000, 3));
  auto aq = Analyzed(c,
                     "SELECT PACKAGE(L) FROM lineitem L "
                     "SUCH THAT COUNT(*) = 8 AND SUM(quantity) <= 200 "
                     "MAXIMIZE SUM(revenue)");
  QueryEvaluator ev(&c);
  EvaluationOptions direct;
  direct.strategy = Strategy::kIlpSolver;
  auto d = ev.Evaluate(aq, direct);
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  SketchRefineOptions opts;
  opts.partition_size = 64;
  auto sr = SketchRefine(aq, opts);
  ASSERT_TRUE(sr.ok()) << sr.status().ToString();
  ASSERT_TRUE(sr->found);
  EXPECT_TRUE(*IsValidPackage(aq, sr->package));
  EXPECT_GE(sr->objective, 0.6 * d->objective)
      << "sketch-refine lost too much objective: " << sr->objective
      << " vs direct " << d->objective;
}

}  // namespace
}  // namespace pb::core
