// Large-instance sparse-simplex suite: the package-LP relaxation at
// benchmark scale (the BM_SparseSimplexScale workload). A million
// candidate tuples, thousands of per-group rows — the regime the dense
// inverse cannot enter (an explicit 4097 x 4097 inverse costs O(m^3) per
// refactorization) and the sparse LU solves in seconds. CTest-registered
// under the "slow" label, DISABLED by default; opt in with:
//
//   cmake -B build -S . -DPB_RUN_SLOW_TESTS=ON
//   cd build && ctest -L slow --output-on-failure

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "solver/simplex.h"

namespace pb::solver {
namespace {

/// The scale workload: n candidates in n/256 groups, maximize total value
/// subject to a global COUNT row (pick exactly one candidate per four
/// groups) and one cardinality row per group. The constraint matrix has
/// 2n nonzeros — exactly the shape a partitioned package query translates
/// to, and the shape the sparse LU keeps fill-free.
LpModel ScaleModel(int n, uint64_t seed) {
  const int groups = n / 256;
  const double k = groups / 4.0;
  Rng rng(seed);
  LpModel m;
  std::vector<LinearTerm> count;
  std::vector<std::vector<LinearTerm>> group_rows(groups);
  for (int j = 0; j < n; ++j) {
    m.AddVariable("x" + std::to_string(j), 0.0, 1.0,
                  rng.UniformReal(1.0, 100.0), /*is_integer=*/false);
    count.push_back({j, 1.0});
    group_rows[j % groups].push_back({j, 1.0});
  }
  m.AddConstraint("count", std::move(count), k, k);
  for (int g = 0; g < groups; ++g) {
    m.AddConstraint("group" + std::to_string(g), std::move(group_rows[g]),
                    -kInfinity, 1.0);
  }
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

TEST(SparseScaleTest, MillionVariableRelaxationSolves) {
  const int n = 1 << 20;  // 4097 rows, 2M nonzeros
  LpModel m = ScaleModel(n, 42);
  SimplexOptions opts;
  opts.factorization = FactorizationKind::kSparseLu;
  auto r = SolveLp(m, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, LpStatus::kOptimal);
  EXPECT_TRUE(m.IsFeasible(r->x, 1e-5));
  EXPECT_GT(r->objective, 0.0);
  // The whole point of the layered engine: iteration counts scale with the
  // active rows, not the candidate count. A budget proportional to the row
  // count (with slack for phase-1 repair) catches any regression into
  // dense-era behavior.
  EXPECT_LT(r->iterations, 16 * 4097);
}

TEST(SparseScaleTest, BackendsAgreeOnTheScaleFamilyAtSmallSizes) {
  // The same generator at a size the dense inverse can still handle: both
  // engines must find the identical unique optimum, which anchors the
  // million-variable run above to a cross-checked family.
  const int n = 1 << 12;  // 17 rows
  LpModel m = ScaleModel(n, 42);
  SimplexOptions dense_opts, sparse_opts;
  dense_opts.factorization = FactorizationKind::kDense;
  sparse_opts.factorization = FactorizationKind::kSparseLu;
  auto dense = SolveLp(m, dense_opts);
  auto sparse = SolveLp(m, sparse_opts);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  ASSERT_EQ(dense->status, LpStatus::kOptimal);
  ASSERT_EQ(sparse->status, LpStatus::kOptimal);
  EXPECT_NEAR(sparse->objective, dense->objective, 1e-7);
  ASSERT_EQ(sparse->x.size(), dense->x.size());
  for (size_t j = 0; j < sparse->x.size(); ++j) {
    EXPECT_NEAR(sparse->x[j], dense->x[j], 1e-7) << "x[" << j << "]";
  }
}

}  // namespace
}  // namespace pb::solver
