// Tests for the interface abstractions (§3): constraint suggestion,
// package-space summary, adaptive exploration, and the package template.

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "core/evaluator.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"
#include "ui/explore.h"
#include "ui/suggest.h"
#include "ui/summary.h"
#include "ui/template.h"

namespace pb::ui {
namespace {

class UiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.RegisterOrReplace(datagen::GenerateRecipes(80, /*seed=*/31));
  }

  paql::AnalyzedQuery Analyzed(const std::string& text) {
    auto aq = paql::ParseAndAnalyze(text, catalog_);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    return std::move(aq).value();
  }

  core::Package SamplePackage(const paql::AnalyzedQuery& aq) {
    core::QueryEvaluator ev(&catalog_);
    auto r = ev.Evaluate(aq);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->package;
  }

  db::Catalog catalog_;
};

// ----- Suggestions (§3.1) ----------------------------------------------------

TEST_F(UiTest, CellHighlightOnNumericColumnSuggestsFatStyleConstraints) {
  // The paper's example interaction: selecting a cell in the "fats" column
  // proposes per-meal fat restrictions and a minimize-total-fat objective.
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3");
  core::Package sample = SamplePackage(aq);
  Highlight h;
  h.kind = Highlight::Kind::kCell;
  h.package_position = 0;
  h.column = "fat";
  auto suggestions = SuggestConstraints(*aq.table, sample, h);
  ASSERT_TRUE(suggestions.ok()) << suggestions.status().ToString();
  bool has_base = false, has_global = false, has_minimize = false;
  for (const Suggestion& s : *suggestions) {
    if (s.kind == Suggestion::Kind::kBaseConstraint) has_base = true;
    if (s.kind == Suggestion::Kind::kGlobalConstraint) has_global = true;
    if (s.kind == Suggestion::Kind::kObjective &&
        s.objective->sense == paql::ObjectiveSense::kMinimize) {
      has_minimize = true;
    }
    EXPECT_FALSE(s.paql.empty());
    EXPECT_FALSE(s.description.empty());
  }
  EXPECT_TRUE(has_base);
  EXPECT_TRUE(has_global);
  EXPECT_TRUE(has_minimize);
}

TEST_F(UiTest, CellHighlightOnStringColumnSuggestsEquality) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3");
  core::Package sample = SamplePackage(aq);
  Highlight h;
  h.kind = Highlight::Kind::kCell;
  h.package_position = 0;
  h.column = "cuisine";
  auto suggestions = SuggestConstraints(*aq.table, sample, h);
  ASSERT_TRUE(suggestions.ok());
  ASSERT_GE(suggestions->size(), 2u);
  EXPECT_NE((*suggestions)[0].paql.find("cuisine ="), std::string::npos);
  EXPECT_NE((*suggestions)[1].paql.find("cuisine <>"), std::string::npos);
}

TEST_F(UiTest, RowHighlightSuggestsMoreLikeThis) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3");
  core::Package sample = SamplePackage(aq);
  Highlight h;
  h.kind = Highlight::Kind::kRow;
  h.package_position = 1;
  auto suggestions = SuggestConstraints(*aq.table, sample, h);
  ASSERT_TRUE(suggestions.ok());
  EXPECT_FALSE(suggestions->empty());
  for (const Suggestion& s : *suggestions) {
    EXPECT_EQ(s.kind, Suggestion::Kind::kBaseConstraint);
  }
}

TEST_F(UiTest, InvalidHighlightPositionFails) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3");
  core::Package sample = SamplePackage(aq);
  Highlight h;
  h.kind = Highlight::Kind::kCell;
  h.package_position = 999;
  h.column = "fat";
  EXPECT_EQ(SuggestConstraints(*aq.table, sample, h).status().code(),
            StatusCode::kOutOfRange);
  h.package_position = 0;
  h.column = "nonexistent";
  EXPECT_EQ(SuggestConstraints(*aq.table, sample, h).status().code(),
            StatusCode::kNotFound);
}

TEST_F(UiTest, ApplySuggestionExtendsQueryAndStaysEvaluable) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3");
  core::Package sample = SamplePackage(aq);
  Highlight h;
  h.kind = Highlight::Kind::kCell;
  h.package_position = 0;
  h.column = "calories";
  auto suggestions = SuggestConstraints(*aq.table, sample, h);
  ASSERT_TRUE(suggestions.ok());
  ASSERT_FALSE(suggestions->empty());

  paql::Query q = aq.query;
  size_t applied = 0;
  for (const Suggestion& s : *suggestions) {
    if (s.kind == Suggestion::Kind::kBaseConstraint ||
        s.kind == Suggestion::Kind::kObjective) {
      ApplySuggestion(s, &q);
      ++applied;
      if (applied == 2) break;
    }
  }
  ASSERT_GE(applied, 1u);
  // The refined query must re-analyze cleanly.
  auto re = paql::Analyze(q, catalog_);
  ASSERT_TRUE(re.ok()) << re.status().ToString() << "\n" << q.ToPaql();
}

// ----- Summary (§3.2) --------------------------------------------------------

TEST_F(UiTest, SummaryPicksTwoDimensionsAndBucketsPackages) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 2 AND SUM(calories) <= 1400 "
      "MAXIMIZE SUM(protein)");
  auto packages = core::EnumerateViaSolver(aq, [&] {
    core::EnumerateOptions o;
    o.max_packages = 12;
    return o;
  }());
  ASSERT_TRUE(packages.ok()) << packages.status().ToString();
  ASSERT_GE(packages->size(), 3u);
  auto summary = SummarizePackageSpace(aq, *packages);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->points.size(), packages->size());
  EXPECT_NE(summary->x_dim.label, summary->y_dim.label);
  // Every package landed in some grid cell.
  int total = 0;
  for (int c : summary->grid) total += c;
  EXPECT_EQ(total, static_cast<int>(packages->size()));
}

TEST_F(UiTest, SummaryNearestPackageAndRender) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 2 AND SUM(calories) <= 1400 "
      "MAXIMIZE SUM(protein)");
  auto packages = core::EnumerateViaSolver(aq, [&] {
    core::EnumerateOptions o;
    o.max_packages = 6;
    return o;
  }());
  ASSERT_TRUE(packages.ok());
  ASSERT_GE(packages->size(), 2u);
  auto summary = SummarizePackageSpace(aq, *packages);
  ASSERT_TRUE(summary.ok());
  // The nearest package to an existing point is that point.
  int idx = summary->NearestPackage(summary->points[0].first,
                                    summary->points[0].second);
  EXPECT_EQ(idx, 0);
  std::string art = summary->Render(idx);
  EXPECT_NE(art.find('@'), std::string::npos);
  EXPECT_NE(art.find(summary->x_dim.label), std::string::npos);
}

TEST_F(UiTest, SummaryEmptyPackageListIsGraceful) {
  auto aq = Analyzed("SELECT PACKAGE(R) FROM recipes R");
  auto summary = SummarizePackageSpace(aq, {});
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->points.empty());
  EXPECT_EQ(summary->NearestPackage(0, 0), -1);
}

// ----- Adaptive exploration (§3.3) -------------------------------------------

TEST_F(UiTest, ExplorationLockAndResampleKeepsLockedTuples) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 1000 AND 2500");
  ExplorationSession session(&aq, {});
  ASSERT_TRUE(session.Start().ok());
  ASSERT_EQ(session.sample().TotalCount(), 3);

  size_t locked_row = session.sample().rows[0];
  ASSERT_TRUE(session.Lock(locked_row).ok());
  std::string before = session.sample().Fingerprint();
  Status s = session.Resample();
  ASSERT_TRUE(s.ok()) << s.ToString();
  // Locked tuple kept, sample changed.
  EXPECT_GE(session.sample().MultiplicityOf(locked_row), 1);
  EXPECT_NE(session.sample().Fingerprint(), before);
  EXPECT_EQ(session.rounds(), 2u);
  auto valid = core::IsValidPackage(aq, session.sample());
  ASSERT_TRUE(valid.ok());
  EXPECT_TRUE(*valid);
}

TEST_F(UiTest, ExplorationLockValidation) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 2");
  ExplorationSession session(&aq, {});
  ASSERT_TRUE(session.Start().ok());
  EXPECT_FALSE(session.Lock(99999).ok());
  EXPECT_FALSE(session.Unlock(12345).ok());
  size_t row = session.sample().rows[0];
  ASSERT_TRUE(session.Lock(row).ok());
  ASSERT_TRUE(session.Unlock(row).ok());
}

TEST_F(UiTest, ExplorationInfersConstraintsFromLockedTuples) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 3");
  ExplorationSession session(&aq, {});
  ASSERT_TRUE(session.Start().ok());
  for (size_t row : session.sample().rows) {
    ASSERT_TRUE(session.Lock(row).ok());
  }
  auto inferred = session.InferConstraints();
  ASSERT_TRUE(inferred.ok());
  ASSERT_FALSE(inferred->empty());
  // All locked tuples are gluten-free: expect the equality inference.
  bool found_gluten = false;
  for (const Suggestion& s : *inferred) {
    if (s.paql.find("gluten = 'free'") != std::string::npos) {
      found_gluten = true;
    }
    EXPECT_EQ(s.kind, Suggestion::Kind::kBaseConstraint);
  }
  EXPECT_TRUE(found_gluten);
}

TEST_F(UiTest, ExplorationNoAlternativeIsInfeasible) {
  // A query with a unique solution cannot resample to something new.
  db::Table t("tiny", db::Schema({{"v", db::ValueType::kDouble}}));
  ASSERT_TRUE(t.Append({db::Value::Double(10)}).ok());
  ASSERT_TRUE(t.Append({db::Value::Double(999)}).ok());
  db::Catalog c;
  c.RegisterOrReplace(std::move(t));
  auto aq = paql::ParseAndAnalyze(
      "SELECT PACKAGE(T) FROM tiny T SUCH THAT SUM(v) BETWEEN 5 AND 20", c);
  ASSERT_TRUE(aq.ok());
  ExplorationSession session(&*aq, {});
  ASSERT_TRUE(session.Start().ok());
  ASSERT_TRUE(session.Lock(session.sample().rows[0]).ok());
  EXPECT_EQ(session.Resample().code(), StatusCode::kInfeasible);
}

// ----- Template (§3.1 rendering) ---------------------------------------------

TEST_F(UiTest, TemplateRendersConstraintsAndAggregates) {
  auto aq = Analyzed(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 1000 AND 2500 "
      "MAXIMIZE SUM(protein)");
  core::Package sample = SamplePackage(aq);
  auto text = RenderPackageTemplate(aq, sample);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Base constraints"), std::string::npos);
  EXPECT_NE(text->find("Global constraints"), std::string::npos);
  EXPECT_NE(text->find("the number of tuples must be exactly 3"),
            std::string::npos);
  EXPECT_NE(text->find("Objective"), std::string::npos);
  EXPECT_NE(text->find("COUNT(*) = 3"), std::string::npos);
  EXPECT_NE(text->find("Sample package (3 tuples)"), std::string::npos);
}

}  // namespace
}  // namespace pb::ui
